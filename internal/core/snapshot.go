package core

import (
	"fmt"
	"sort"
	"strings"

	"dice/internal/minimize"
)

// Finding-set snapshots are the regression harness's unit of comparison
// (internal/regress): a federated round — in-process or distributed —
// renders to a canonical, deterministic list of lines, the harness
// diffs that against a committed golden file, and a replayed trace that
// produces a different finding set fails loudly. Both backends render
// through the helpers here so one golden file checks either backend.

// SnapshotHeader identifies the snapshot format; bump it when the line
// layout changes so stale golden files fail with a format mismatch
// instead of a confusing content diff.
const SnapshotHeader = "# dice finding snapshot v1"

// snapshotFinding renders one finding canonically: every wire-carried,
// schedule-independent field (Seq depends on worker scheduling and the
// Input map has no stable order — both excluded, as in the distributed
// parity contract), plus the injected and minimal witnesses when set.
func snapshotFinding(f Finding) []string {
	lines := []string{fmt.Sprintf("  finding %s|%s|%s|%s|%d|%d|%s|validated=%t|spread=%v",
		f.Kind, f.Peer, f.Prefix, f.LeakRange, f.OriginAS, f.VictimAS, f.VictimPrefix, f.Validated, f.SpreadTo)}
	if f.Witness != nil {
		lines = append(lines, "    witness "+minimize.Render(f.Witness))
	}
	if f.MinimalWitness != nil {
		lines = append(lines, "    minimal "+minimize.Render(f.MinimalWitness))
	}
	return lines
}

// SnapshotTarget renders one target's share of a round. Findings sort
// by their rendered line (their own order is exploration order, which
// worker scheduling may permute); each finding's witness sub-lines stay
// attached to it.
func SnapshotTarget(node, peer, scenario, skipped string, findings []Finding) []string {
	lines := []string{fmt.Sprintf("target %s<-%s %s", node, peer, scenario)}
	if skipped != "" {
		return append(lines, "  skipped: "+skipped)
	}
	blocks := make([][]string, 0, len(findings))
	keys := make([]string, 0, len(findings))
	for _, f := range findings {
		b := snapshotFinding(f)
		blocks = append(blocks, b)
		// Sort by the whole block: two findings can render the same
		// finding line (Seq/Input are excluded) yet differ in their
		// witness sub-lines, and exploration order must not leak into
		// the tie-break.
		keys = append(keys, strings.Join(b, "\n"))
	}
	sort.Sort(&blockSort{keys: keys, blocks: blocks})
	for _, b := range blocks {
		lines = append(lines, b...)
	}
	return lines
}

type blockSort struct {
	keys   []string
	blocks [][]string
}

func (s *blockSort) Len() int           { return len(s.keys) }
func (s *blockSort) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *blockSort) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.blocks[i], s.blocks[j] = s.blocks[j], s.blocks[i]
}

// SnapshotTail renders the cross-node section shared by both backends:
// sorted violations and the witness-traffic summary.
func SnapshotTail(violations []FederatedViolation, injected, skipped, steps int) []string {
	lines := []string{"violations"}
	vs := make([]string, 0, len(violations))
	for _, v := range violations {
		vs = append(vs, "  "+v.String())
	}
	sort.Strings(vs)
	lines = append(lines, vs...)
	lines = append(lines, fmt.Sprintf("summary witnesses_injected=%d witnesses_skipped=%d propagation_steps=%d",
		injected, skipped, steps))
	return lines
}

// Snapshot renders the round canonically for golden-file comparison.
func (res *FederatedResult) Snapshot() []string {
	lines := []string{SnapshotHeader}
	for _, tr := range res.Targets {
		skipped := ""
		if tr.Err != nil {
			skipped = tr.Err.Error()
		}
		var findings []Finding
		if tr.Result != nil {
			findings = tr.Result.Findings
		}
		lines = append(lines, SnapshotTarget(tr.Node, tr.Peer, tr.Scenario, skipped, findings)...)
	}
	return append(lines, SnapshotTail(res.Violations, res.WitnessesInjected, res.WitnessesSkipped, res.PropagationSteps)...)
}
