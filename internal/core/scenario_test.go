package core

import (
	"testing"

	"dice/internal/concolic"
)

// TestScenarioRegistry: the built-in scenarios are registered and lookup
// failures name what IS available.
func TestScenarioRegistry(t *testing.T) {
	want := []string{ScenarioOpen, ScenarioUpdate, ScenarioWithdraw}
	got := ScenarioNames()
	for _, name := range want {
		sc, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q not registered; have %v", name, got)
		}
		if sc.Name() != name || sc.Description() == "" {
			t.Fatalf("scenario %q malformed: name=%q desc=%q", name, sc.Name(), sc.Description())
		}
	}
	if _, ok := LookupScenario("nonsense"); ok {
		t.Fatal("bogus scenario resolved")
	}
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(f.Provider, Options{}).ExploreScenario("nonsense", NodeCustomer); err == nil {
		t.Fatal("exploring an unknown scenario did not error")
	}
}

// TestUpdateAndOpenShareRoundMachinery: both ported scenarios run through
// ExploreScenario with the same DiCE instance and produce their
// scenario-specific results.
func TestUpdateAndOpenShareRoundMachinery(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(200, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}})

	upd, err := d.ExploreScenario(ScenarioUpdate, NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if upd.Scenario != ScenarioUpdate || len(upd.Findings) == 0 {
		t.Fatalf("update scenario: %q with %d findings", upd.Scenario, len(upd.Findings))
	}

	open, err := d.ExploreScenario(ScenarioOpen, NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	oe, ok := open.Details.(*OpenExploration)
	if !ok || open.Scenario != ScenarioOpen {
		t.Fatalf("open scenario details = %T", open.Details)
	}
	if oe.Paths < 5 {
		t.Fatalf("open scenario explored %d paths, want >= 5", oe.Paths)
	}
}

// TestWithdrawScenario: the new scenario — exploring the withdrawal side
// of UPDATE handling. The customer contributed exactly one route (its own
// space) with no alternative path, so exploration must discover both the
// matching withdraw (which blackholes the prefix and propagates the loss)
// and the no-op path, and the oracle must flag the blackhole with a
// validated witness.
func TestWithdrawScenario(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(100, 0)); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 500}})
	res, err := d.ExploreScenario(ScenarioWithdraw, NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	we, ok := res.Details.(*WithdrawExploration)
	if !ok {
		t.Fatalf("details = %T", res.Details)
	}
	if we.Paths < 2 {
		t.Fatalf("withdraw exploration found %d paths, want >= 2 (hit + miss)", we.Paths)
	}
	var hit, miss bool
	for _, oc := range we.Outcomes {
		if oc.Removed {
			hit = true
			if oc.Prefix != CustomerSpace {
				t.Fatalf("removed an unexpected prefix: %v", oc.Prefix)
			}
			if !oc.Blackholed {
				t.Fatalf("customer's only route withdrawn but not blackholed: %+v", oc)
			}
		} else {
			miss = true
		}
	}
	if !hit || !miss {
		t.Fatalf("outcome matrix incomplete (hit=%v miss=%v): %+v", hit, miss, we.Outcomes)
	}
	if len(res.Findings) == 0 {
		t.Fatal("blackhole oracle reported nothing")
	}
	fd := res.Findings[0]
	if fd.Kind != "withdraw-blackhole" || !fd.Validated || fd.Prefix != CustomerSpace {
		t.Fatalf("bad finding: %+v", fd)
	}
	spreads := false
	for _, p := range fd.SpreadTo {
		if p == NodeInternet {
			spreads = true
		}
	}
	if !spreads {
		t.Fatalf("blackhole does not report propagation to the internet peer: %v", fd.SpreadTo)
	}
	if we.String() == "" {
		t.Fatal("empty report")
	}
	// The live RIB still holds the customer route: exploration was
	// clone-isolated.
	if f.Provider.RIB().Best(CustomerSpace) == nil {
		t.Fatal("live RIB lost the customer route to exploration")
	}
}

// TestWarmRoundIssuesFewerSolverCalls is the online-mode acceptance
// check: with ReuseState, a second round on the same peer and seed skips
// every already-explored path and negation, so it issues (measurably —
// here: zero vs. many) fewer solver queries.
func TestWarmRoundIssuesFewerSolverCalls(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(200, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}, ReuseState: true})

	cold, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Report.SolverCalls == 0 || len(cold.Report.Paths) == 0 {
		t.Fatalf("cold round did no work: %d calls, %d paths",
			cold.Report.SolverCalls, len(cold.Report.Paths))
	}

	warm, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	warmQueries := warm.Report.SolverCalls + warm.Report.CacheHits
	if warmQueries >= cold.Report.SolverCalls {
		t.Fatalf("warm round issued %d queries, cold issued %d", warmQueries, cold.Report.SolverCalls)
	}
	if warm.Report.SkippedNegations == 0 {
		t.Fatal("warm round skipped no negations")
	}
	if len(warm.Report.Paths) != 0 {
		t.Fatalf("warm round re-reported %d known paths", len(warm.Report.Paths))
	}

	st := d.State(ScenarioUpdate, NodeCustomer)
	if st == nil {
		t.Fatal("no accumulated state for the update scenario")
	}
	if stats := st.Stats(); stats.Rounds != 2 || stats.Paths != len(cold.Report.Paths) {
		t.Fatalf("state stats = %+v, want 2 rounds / %d paths", stats, len(cold.Report.Paths))
	}

	// Per-(scenario, peer) isolation: an open-scenario round must not see
	// the update scenario's state.
	if _, err := d.ExploreScenario(ScenarioOpen, NodeCustomer); err != nil {
		t.Fatal(err)
	}
	if open := d.State(ScenarioOpen, NodeCustomer); open == nil || open.Stats().Paths == 0 {
		t.Fatal("open scenario accumulated no state of its own")
	}
}
