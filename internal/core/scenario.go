package core

import (
	"fmt"
	"sort"
	"sync"

	"dice/internal/concolic"
	"dice/internal/router"
)

// Scenario is one protocol surface DiCE can explore concolically. The
// paper's Oasis "explores multiple message types"; a Scenario packages
// everything message-type-specific — how to derive a seed input from the
// live node, which fields of it become symbolic, how to execute one
// engine-chosen input against a checkpoint clone, and which oracles to
// run over the finished report — so the round machinery in DiCE
// (checkpointing, clone-per-run isolation, memory accounting, cross-round
// state) is written once and shared by every message type.
//
// Implementations must be stateless values: one registered Scenario
// serves concurrent rounds over different routers and peers. Seed values
// are opaque to the round machinery; each scenario round-trips its own
// type through the `seed any` parameters.
type Scenario interface {
	// Name is the registry key (e.g. "update", "open", "withdraw").
	Name() string
	// Description is a one-line summary for operator-facing listings.
	Description() string
	// Seed derives the observed seed input for peer from the live router.
	// It is called under the clone lock; it must only read.
	Seed(live *router.Router, peer string) (any, error)
	// Declare registers the scenario's symbolic input template on the
	// engine, seeded from the observed input.
	Declare(eng *concolic.Engine, seed any) error
	// Execute runs one engine-chosen input against a fresh clone of the
	// checkpoint and returns the outcome the scenario's oracles consume.
	// It is called concurrently from exploration workers; the clone is
	// private to the call, the seed is shared and must not be mutated.
	Execute(rc *concolic.RunContext, clone *router.Router, peer string, seed any) any
	// Analyze runs the scenario's fault oracles over the finished round,
	// filling res (Findings and/or Details).
	Analyze(d *DiCE, round *Round, res *Result)
}

// Round carries the artifacts of one finished exploration round into a
// scenario's oracles: the peer and seed it ran from, the engine (for
// witness validation by re-execution), and the checkpoint-time router
// whose state the oracles compare against ("routes already in the
// routing table prior to starting exploration", §4.2).
type Round struct {
	Peer       string
	Seed       any
	Engine     *concolic.Engine
	Checkpoint *router.Router
}

var (
	scenarioMu sync.RWMutex
	scenarios  = make(map[string]Scenario)
)

// RegisterScenario adds a scenario to the registry. Built-in scenarios
// register themselves from init; external packages may add more. It
// panics on a duplicate name — scenario names are operator-facing
// identifiers and must be unambiguous.
func RegisterScenario(s Scenario) {
	scenarioMu.Lock()
	defer scenarioMu.Unlock()
	if _, dup := scenarios[s.Name()]; dup {
		panic(fmt.Sprintf("core: duplicate scenario %q", s.Name()))
	}
	scenarios[s.Name()] = s
}

// LookupScenario returns the registered scenario for name.
func LookupScenario(name string) (Scenario, bool) {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	s, ok := scenarios[name]
	return s, ok
}

// ScenarioNames returns all registered scenario names, sorted.
func ScenarioNames() []string {
	scenarioMu.RLock()
	defer scenarioMu.RUnlock()
	names := make([]string, 0, len(scenarios))
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Built-in scenario names.
const (
	ScenarioUpdate    = "update"
	ScenarioOpen      = "open"
	ScenarioWithdraw  = "withdraw"
	ScenarioRouteLeak = "routeleak"
)
