package core

import (
	"fmt"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/router"
)

// updateScenario is the paper's core case study: concolic exploration of
// UPDATE handling (import policy, best-path selection, export policy)
// with the §4.2 origin-misconfiguration / prefix-hijack oracle.
type updateScenario struct{}

func init() { RegisterScenario(updateScenario{}) }

func (updateScenario) Name() string { return ScenarioUpdate }

func (updateScenario) Description() string {
	return "UPDATE import/export policy exploration with the §4.2 prefix-hijack oracle"
}

func (updateScenario) Seed(live *router.Router, peer string) (any, error) {
	// The most recent announcement, not the most recent message: a
	// replayed history ending in a withdraw must still leave a usable
	// announcement template.
	seed := live.LastAnnounced(peer)
	if seed == nil {
		return nil, fmt.Errorf("dice: no observed UPDATE from peer %q to explore from", peer)
	}
	return seed, nil
}

func (updateScenario) Declare(eng *concolic.Engine, seed any) error {
	return router.DeclareSymbolicInputs(eng, seed.(*bgp.Update))
}

func (updateScenario) Execute(rc *concolic.RunContext, clone *router.Router, peer string, seed any) any {
	return clone.HandleUpdateConcolic(rc, peer, seed.(*bgp.Update))
}

func (updateScenario) Analyze(d *DiCE, round *Round, res *Result) {
	// Oracles run against the checkpoint-time routing table (the "routes
	// already in the routing table prior to starting exploration", §4.2),
	// which is exactly the checkpoint process's RIB.
	res.Findings, res.FalsePositivesFiltered = DetectHijacks(d.live.Config(), res.Report, round.Checkpoint.RIB())

	// Witness validation by re-execution. Each finding's witness input
	// came out of the constraint solver; concretization (e.g. the mask
	// computed from the run's concrete length) can make recorded
	// constraints imprecise, so every witness is replayed through the
	// instrumented handler on a fresh clone and must concretely reproduce
	// the hijack before it is reported.
	validated := res.Findings[:0]
	for _, fd := range res.Findings {
		pr := round.Engine.RunOnce(witnessEnv(fd.Input))
		out, ok := pr.Output.(router.ExplorationOutcome)
		if ok && out.Accepted && fd.VictimPrefix.Covers(out.Prefix) && out.OriginAS != fd.VictimAS {
			fd.Validated = true
			fd.SpreadTo = out.SpreadTo
			validated = append(validated, fd)
		} else {
			res.WitnessesRejected++
		}
	}
	res.Findings = validated
}

// witnessEnv converts a finding's named input back into an engine
// assignment (IDs follow DeclareSymbolicInputs declaration order).
func witnessEnv(input map[string]uint64) map[int]uint64 {
	names := []string{
		router.StandardVars.Addr,
		router.StandardVars.Len,
		router.StandardVars.Origin,
		router.StandardVars.MED,
		router.StandardVars.LocalPref,
	}
	env := make(map[int]uint64, len(input))
	for id, name := range names {
		if v, ok := input[name]; ok {
			env[id] = v
		}
	}
	return env
}
