package core

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/router"
)

// withdrawScenario explores the withdrawal side of UPDATE handling: which
// WITHDRAWN-routes fields can a peer send to change the node's routing?
// Its oracle flags blackholing withdraws — inputs that remove the only
// route to a prefix and propagate the loss to other peers, the
// availability mirror image of the hijack oracle.
type withdrawScenario struct{}

func init() { RegisterScenario(withdrawScenario{}) }

func (withdrawScenario) Name() string { return ScenarioWithdraw }

func (withdrawScenario) Description() string {
	return "route-withdrawal exploration with a reachability-blackhole oracle"
}

func (withdrawScenario) Seed(live *router.Router, peer string) (any, error) {
	seed := live.LastObserved(peer)
	if seed == nil {
		return nil, fmt.Errorf("dice: no observed UPDATE from peer %q to explore withdrawals from", peer)
	}
	if len(seed.Withdrawn) == 0 && len(seed.NLRI) == 0 {
		return nil, fmt.Errorf("dice: seed UPDATE for %q carries no prefixes", peer)
	}
	return seed, nil
}

func (withdrawScenario) Declare(eng *concolic.Engine, seed any) error {
	return router.DeclareWithdrawInputs(eng, seed.(*bgp.Update))
}

func (withdrawScenario) Execute(rc *concolic.RunContext, clone *router.Router, peer string, seed any) any {
	return clone.HandleWithdrawConcolic(rc, peer, seed.(*bgp.Update))
}

func (withdrawScenario) Analyze(d *DiCE, round *Round, res *Result) {
	out := &WithdrawExploration{
		Peer:  round.Peer,
		Paths: len(res.Report.Paths),
		Runs:  res.Report.Runs,
	}
	seen := map[string]bool{}
	for _, p := range res.Report.Paths {
		oc, ok := p.Output.(router.WithdrawOutcome)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%v/%v/%v/%v", oc.Removed, oc.BestChanged, oc.Blackholed, oc.Prefix)
		if seen[key] {
			continue
		}
		seen[key] = true
		out.Outcomes = append(out.Outcomes, oc)

		// Oracle: a withdraw that blackholes a prefix AND propagates the
		// loss beyond this node is an availability incident a single
		// flapping peer can cause. Validate the witness by re-execution
		// before reporting, like the hijack oracle does.
		if !(oc.Blackholed && len(oc.PropagatedTo) > 0) {
			continue
		}
		fd := Finding{
			Kind:         "withdraw-blackhole",
			Peer:         round.Peer,
			Prefix:       oc.Prefix,
			VictimPrefix: oc.Prefix,
			Seq:          p.Seq,
			Input: map[string]uint64{
				router.StandardWithdrawVars.Addr: uint64(uint32(oc.Prefix.Addr())),
				router.StandardWithdrawVars.Len:  uint64(oc.Prefix.Bits()),
			},
		}
		pr := round.Engine.RunOnce(withdrawWitnessEnv(fd.Input))
		voc, vok := pr.Output.(router.WithdrawOutcome)
		if vok && voc.Blackholed {
			fd.Validated = true
			fd.SpreadTo = voc.PropagatedTo
			res.Findings = append(res.Findings, fd)
		} else {
			res.WitnessesRejected++
		}
	}
	sort.Slice(out.Outcomes, func(i, j int) bool {
		return out.Outcomes[i].Prefix.Compare(out.Outcomes[j].Prefix) < 0
	})
	sort.Slice(res.Findings, func(i, j int) bool {
		return res.Findings[i].Prefix.Compare(res.Findings[j].Prefix) < 0
	})
	res.Details = out
}

// withdrawWitnessEnv rebuilds the engine assignment for a withdraw
// witness (IDs follow DeclareWithdrawInputs declaration order).
func withdrawWitnessEnv(input map[string]uint64) map[int]uint64 {
	names := []string{
		router.StandardWithdrawVars.Addr,
		router.StandardWithdrawVars.Len,
	}
	env := make(map[int]uint64, len(input))
	for id, name := range names {
		if v, ok := input[name]; ok {
			env[id] = v
		}
	}
	return env
}

// WithdrawExploration is the result of concolically exploring a peer's
// route withdrawals.
type WithdrawExploration struct {
	Peer     string
	Paths    int
	Runs     int
	Outcomes []router.WithdrawOutcome // one per distinct RIB effect
}

// String renders the outcome matrix.
func (w *WithdrawExploration) String() string {
	s := fmt.Sprintf("withdraw exploration for peer %s: %d paths in %d runs\n", w.Peer, w.Paths, w.Runs)
	for _, out := range w.Outcomes {
		switch {
		case !out.Removed:
			s += fmt.Sprintf("  outcome: %s — no route from this peer; RIB unchanged\n", out.Prefix)
		case out.Blackholed:
			s += fmt.Sprintf("  outcome: %s withdrawn — prefix BLACKHOLED, loss propagated to %v\n",
				out.Prefix, out.PropagatedTo)
		case out.BestChanged:
			s += fmt.Sprintf("  outcome: %s withdrawn — best path changed, re-announced to %v\n",
				out.Prefix, out.PropagatedTo)
		default:
			s += fmt.Sprintf("  outcome: %s withdrawn — alternate path already best; no change\n", out.Prefix)
		}
	}
	return s
}
