package core

import (
	"strings"
	"testing"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/router"
)

// leakTopo3AS builds the 3-AS line of examples/routeleak: customer —
// provider — upstream, with the provider's import filter carrying the
// §4.2 hole. honorNoExport selects the provider's export policy toward
// the upstream: honoring NO_EXPORT (correct) or accept-all (the leak).
func leakTopo3AS(honorNoExport bool) *Topology {
	export := []string{
		"filter upstream_out {",
		"    accept;",
		"}",
	}
	if honorNoExport {
		export = []string{
			"filter upstream_out {",
			"    if community (65535,65281) then reject;",
			"    accept;",
			"}",
		}
	}
	provCfg := []string{
		"router id 10.0.0.2;",
		"local as 65002;",
		"filter customer_in {",
		"    if net ~ 10.7.0.0/16 then accept;",
		"    if net ~ 10.0.0.0/8{24,32} then accept;",
		"    reject;",
		"}",
	}
	provCfg = append(provCfg, export...)
	provCfg = append(provCfg,
		"peer customer { remote 10.0.0.1 as 65001; import filter customer_in; }",
		"peer upstream { remote 10.0.0.3 as 65003; export filter upstream_out; }",
	)
	return &Topology{
		Name: "routeleak-3as",
		Nodes: []TopoNode{
			{Name: "customer", Config: []string{
				"router id 10.0.0.1;",
				"local as 65001;",
				"network 10.7.0.0/16;",
				"peer provider { remote 10.0.0.2 as 65002; }",
			}},
			{Name: "provider", Config: provCfg},
			{Name: "upstream", Config: []string{
				"router id 10.0.0.3;",
				"local as 65003;",
				"peer provider { remote 10.0.0.2 as 65002; }",
			}},
		},
		Edges: []TopoEdge{
			{A: "customer", B: "provider"},
			{A: "provider", B: "upstream"},
		},
		Explore: []ExploreTarget{
			{Node: "provider", Peer: "customer", Scenario: ScenarioRouteLeak},
		},
	}
}

func fedOpts() FederatedOptions {
	return FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
	}
}

// TestFederatedRouteLeakCrossNode is the acceptance scenario: per-node
// exploration finds the provider exporting NO_EXPORT-tagged customer
// routes, the concrete witness propagates across the shadow topology,
// and the cross-node oracles confirm the leak at the upstream plus the
// multi-hop blackhole behind the import filter's hole.
func TestFederatedRouteLeakCrossNode(t *testing.T) {
	fe, err := NewFederatedExperiment(leakTopo3AS(false), fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	livePrefixes := map[string]int{}
	for name, r := range fe.Fabric.Routers {
		livePrefixes[name] = r.RIB().Prefixes()
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 1 || res.Targets[0].Err != nil {
		t.Fatalf("targets: %+v", res.Targets)
	}
	local := res.Targets[0].Result
	if len(local.Findings) == 0 {
		t.Fatalf("no local route-leak findings (report: %d paths, %d runs)",
			len(local.Report.Paths), local.Report.Runs)
	}
	for _, f := range local.Findings {
		if f.Kind != "route-leak" || !f.Validated {
			t.Errorf("unexpected finding %+v", f)
		}
	}
	if res.WitnessesInjected == 0 {
		t.Fatal("no witnesses propagated cross-node")
	}
	if res.PropagationSteps == 0 {
		t.Error("witness propagation delivered no messages")
	}

	kinds := map[string]int{}
	for _, v := range res.Violations {
		kinds[v.Kind]++
		if v.Kind == "route-leak" && v.Node != "upstream" {
			t.Errorf("route leak observed at %q, want upstream: %s", v.Node, v)
		}
	}
	if kinds["route-leak"] == 0 {
		t.Errorf("cross-node oracle confirmed no route leak; violations: %v", res.Violations)
	}
	if kinds["multi-hop-blackhole"] == 0 {
		t.Errorf("no multi-hop blackhole despite the import hole; violations: %v", res.Violations)
	}
	if kinds["stale-route"] != 0 {
		t.Errorf("withdraw propagation left stale routes: %v", res.Violations)
	}

	// Shadow isolation: witness propagation must not touch the live
	// fabric — every live routing table keeps its pre-round size.
	for name, r := range fe.Fabric.Routers {
		if got := r.RIB().Prefixes(); got != livePrefixes[name] {
			t.Errorf("live %s RIB grew %d → %d prefixes: witnesses leaked out of the shadow",
				name, livePrefixes[name], got)
		}
	}
}

// TestFederatedNoLeakWhenHonored: with the provider honoring NO_EXPORT
// on export, the same exploration yields no route-leak findings and no
// cross-node violations.
func TestFederatedNoLeakWhenHonored(t *testing.T) {
	fe, err := NewFederatedExperiment(leakTopo3AS(true), fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Targets[0].Result.Findings); n != 0 {
		t.Errorf("%d local findings on the honoring config: %v", n, res.Targets[0].Result.Findings)
	}
	for _, v := range res.Violations {
		if v.Kind == "route-leak" {
			t.Errorf("route-leak violation on the honoring config: %s", v)
		}
	}
}

// TestFederatedCustomBoundary: a topology-level no_export_community must
// flow through to the routeleak oracle (solver query, witness validation)
// and to the cross-node leak check — findings carry the custom community
// and the leak is still confirmed at the upstream.
func TestFederatedCustomBoundary(t *testing.T) {
	topo := leakTopo3AS(false)
	topo.NoExportCommunity = "64999:13"
	fe, err := NewFederatedExperiment(topo, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	findings := res.Targets[0].Result.Findings
	if len(findings) == 0 {
		t.Fatal("no findings with a custom boundary community")
	}
	want := uint64(bgp.MakeCommunity(64999, 13))
	for _, f := range findings {
		if got := f.Input[router.StandardLeakVars.Community]; got != want {
			t.Errorf("finding community = %#x, want %#x", got, want)
		}
	}
	leaks := 0
	for _, v := range res.Violations {
		if v.Kind == "route-leak" {
			leaks++
		}
	}
	if leaks == 0 {
		t.Errorf("custom-boundary witness produced no cross-node route-leak; violations: %v", res.Violations)
	}
}

// TestFederatedCommunityGatedImport: when acceptance itself hinges on a
// community (import accepts only 65001:7), the accepting path's
// constraints must keep the symbolic community equality — the solver
// query "path ∧ community == boundary" is then Unsat, so the oracle
// reports nothing and, crucially, rejects no witnesses. A dropped
// constraint would instead produce a Sat query whose witness fails
// re-execution (WitnessesRejected > 0).
func TestFederatedCommunityGatedImport(t *testing.T) {
	topo := leakTopo3AS(false)
	topo.Nodes[1].Config = []string{
		"router id 10.0.0.2;",
		"local as 65002;",
		"filter customer_in {",
		"    if community (65001,7) then accept;",
		"    reject;",
		"}",
		"peer customer { remote 10.0.0.1 as 65001; import filter customer_in; }",
		"peer upstream { remote 10.0.0.3 as 65003; }",
	}
	fe, err := NewFederatedExperiment(topo, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	r := res.Targets[0].Result
	if r.WitnessesRejected != 0 {
		t.Errorf("%d witnesses rejected: the accepting path lost its community constraint", r.WitnessesRejected)
	}
	if len(r.Findings) != 0 {
		t.Errorf("unexpected findings on a community-gated import: %v", r.Findings)
	}
	// Exploration must still have discovered the community-gated accept.
	accepted := false
	for _, p := range r.Report.Paths {
		if out, ok := p.Output.(router.LeakOutcome); ok && out.Accepted {
			accepted = true
			if out.Community != bgp.MakeCommunity(65001, 7) {
				t.Errorf("accepting run carried community %#x, want 65001:7", out.Community)
			}
		}
	}
	if !accepted {
		t.Error("exploration never steered the community onto the gating value")
	}
}

// TestFederatedOscillationBound: an absurdly small propagation budget
// must trip the persistent-oscillation oracle instead of hanging or
// silently under-propagating.
func TestFederatedOscillationBound(t *testing.T) {
	opts := fedOpts()
	opts.MaxPropagationSteps = 1
	fe, err := NewFederatedExperiment(leakTopo3AS(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	osc := 0
	for _, v := range res.Violations {
		if v.Kind == "persistent-oscillation" {
			osc++
			// The wave telemetry separates this case — a healthy line
			// cut off by an absurdly tight bound — from genuine
			// divergence: only a single delivery wave ever ran, where
			// examples/badgadget shows a long steady-state tail.
			if v.Waves != 1 || len(v.WaveTail) != 1 {
				t.Errorf("1-step bound should record exactly one wave: waves=%d tail=%v", v.Waves, v.WaveTail)
			}
		}
	}
	if osc == 0 {
		t.Errorf("propagation bound of 1 step tripped no oscillation oracle: %v", res.Violations)
	}
}

// TestFederatedWarmRounds: with ReuseState, a second round over the same
// fabric skips the first round's work per node.
func TestFederatedWarmRounds(t *testing.T) {
	opts := fedOpts()
	opts.ReuseState = true
	fe, err := NewFederatedExperiment(leakTopo3AS(false), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Round(); err != nil {
		t.Fatal(err)
	}
	warm, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	rep := warm.Targets[0].Result.Report
	if len(rep.Paths) != 0 {
		t.Errorf("warm round reported %d new paths, want 0", len(rep.Paths))
	}
	if rep.SkippedNegations == 0 {
		t.Error("warm round skipped no negations")
	}
	ids := fe.States().NodeIDs()
	if len(ids) != 1 || !strings.HasPrefix(ids[0], "provider/") {
		t.Errorf("state map keys = %v, want one provider/... entry", ids)
	}
}

// TestFederatedDefaultTargets: with no explore list, every edge explores
// both directions, skipping (not failing) peerings with no observed seed.
func TestFederatedDefaultTargets(t *testing.T) {
	topo := leakTopo3AS(false)
	topo.Explore = nil
	fe, err := NewFederatedExperiment(topo, fedOpts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 4 {
		t.Fatalf("%d targets for 2 edges, want 4", len(res.Targets))
	}
	ran, skipped := 0, 0
	for _, tr := range res.Targets {
		if tr.Err != nil {
			skipped++
		} else {
			ran++
		}
	}
	if ran == 0 {
		t.Error("no defaulted target ran")
	}
	// The upstream originates nothing, so provider←upstream has no seed.
	if skipped == 0 {
		t.Error("expected at least one skipped target (no observed seed)")
	}
}

// TestParseTopology covers format validation.
func TestParseTopology(t *testing.T) {
	good := `{
	  "name": "t",
	  "nodes": [
	    {"name": "a", "config": ["router id 10.0.0.1;", "local as 1;", "peer b { remote 10.0.0.2 as 2; }"]},
	    {"name": "b", "config": ["router id 10.0.0.2;", "local as 2;", "peer a { remote 10.0.0.1 as 1; }"]}
	  ],
	  "edges": [{"a": "a", "b": "b", "latency_ms": 2}],
	  "explore": [{"node": "a", "peer": "b"}]
	}`
	topo, err := ParseTopology([]byte(good))
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := topo.BoundaryCommunity(); c != 0xFFFFFF01 {
		t.Errorf("default boundary community = %#x, want RFC1997 NO_EXPORT", c)
	}
	if _, err := topo.Build(); err != nil {
		t.Errorf("build: %v", err)
	}

	bad := []string{
		`{"name":"x","nodes":[{"name":"a","config":["x"]}],"edges":[]}`,                                                                           // 1 node
		`{"name":"x","nodes":[{"name":"a","config":["x"]},{"name":"a","config":["x"]}],"edges":[{"a":"a","b":"a"}]}`,                              // dup node
		`{"name":"x","nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"c"}]}`,                              // unknown edge node
		`{"name":"x","nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[]}`,                                               // no edges
		`{"name":"x","no_export_community":"nope","nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"b"}]}`, // bad community
		`{"name":"x","bogus":1,"nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"b"}]}`,                    // unknown field
	}
	for i, src := range bad {
		if _, err := ParseTopology([]byte(src)); err == nil {
			t.Errorf("bad topology %d parsed without error", i)
		}
	}
}

// TestBuiltinTopologies: the generated line and mesh shapes build,
// converge and run a federated round end to end.
func TestBuiltinTopologies(t *testing.T) {
	for _, topo := range []*Topology{LineTopology(3), MeshTopology(4)} {
		fe, err := NewFederatedExperiment(topo, FederatedOptions{
			Engine:  concolic.Options{MaxRuns: 200},
			Workers: 2,
		})
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		res, err := fe.Round()
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		ran := 0
		for _, tr := range res.Targets {
			if tr.Err == nil && tr.Result.Report.Runs > 0 {
				ran++
			}
		}
		if ran == 0 {
			t.Errorf("%s: no target explored", topo.Name)
		}
	}
}
