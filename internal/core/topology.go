package core

import (
	"fmt"
	"time"

	"dice/internal/bgp"
	"dice/internal/config"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/router"
	"dice/internal/trace"
)

// Figure 2 of the paper: Customer —(customer-provider link)— Provider
// (DiCE-enabled) — Rest-of-the-Internet. Customer route filtering happens
// at the provider.

// Node names on the virtual network.
const (
	NodeCustomer = "customer"
	NodeProvider = "provider"
	NodeInternet = "internet"
)

// AS numbers and router IDs of the Fig. 2 roles.
const (
	CustomerAS = 65001
	ProviderAS = 65002
	InternetAS = 65003
)

// CustomerSpace is the customer's legitimate address plan.
var CustomerSpace = netaddr.MustParsePrefix("10.7.0.0/16")

// CorrectCustomerFilter only admits the customer's own space — the best
// common practice the paper describes ("customer route filtering ... is
// adopted by several large ISPs to defend against BGP prefix hijacking").
const CorrectCustomerFilter = `
filter customer_in {
    if net ~ 10.7.0.0/16 then accept;
    reject;
}`

// BrokenCustomerFilter is the §4.2 misconfiguration: the filter is
// "partially correct" — the first clause correctly admits the customer
// space, but the operator fat-fingered the second clause, which was meant
// to admit another customer range and instead admits any sufficiently
// specific prefix in 10.0.0.0/8. Exploration negates the first clause's
// predicates and then satisfies the second one's, constructing exactly
// the leaked prefix ranges.
const BrokenCustomerFilter = `
filter customer_in {
    if net ~ 10.7.0.0/16 then accept;
    if net ~ 10.0.0.0/8{24,32} then accept;
    reject;
}`

// ThroughputFilter is a realistic many-clause customer policy used by the
// §4.1 throughput experiments: a larger clause count gives the concolic
// engine a path space comparable to a production BIRD configuration, so
// exploration runs continuously for the whole measurement window.
const ThroughputFilter = `
filter customer_in {
    if bgp_path.len > 16 then reject;
    if origin = incomplete && med > 500 then reject;
    if net ~ 10.7.0.0/16 then accept;
    if net ~ 10.16.0.0/14{16,24} then accept;
    if net ~ 10.32.0.0/13{14,24} && local_pref >= 100 then accept;
    if net ~ 10.64.0.0/12{13,26} then accept;
    if net ~ 10.96.0.0/11{12,28} && med < 200 then accept;
    if net ~ 10.128.0.0/10{11,30} then accept;
    if net ~ 10.192.0.0/11 && bgp_path.origin != 64512 then accept;
    if net ~ 10.224.0.0/12{13,25} then accept;
    if net ~ 10.240.0.0/13 && origin = igp then accept;
    if net ~ 10.248.0.0/14{15,27} then accept;
    if net ~ 10.252.0.0/15 && local_pref > 50 then accept;
    if net ~ 10.0.0.0/8{24,32} then accept;
    reject;
}`

// MissingCustomerFilter models PCCW's side of the incident: no filtering
// at all.
const MissingCustomerFilter = `
filter customer_in {
    accept;
}`

// Fig2 is the instantiated experimental topology.
type Fig2 struct {
	Net      *netsim.Network
	Customer *router.Router
	Provider *router.Router
	Internet *router.Router
}

// Fig2Options parameterizes the topology.
type Fig2Options struct {
	// CustomerFilter is the provider's import policy for the customer
	// (one of the *CustomerFilter constants, or custom source).
	CustomerFilter string
	// Anycast space configured at the provider (FP suppression).
	Anycast []netaddr.Prefix
	// LinkLatency between nodes (0 = 1ms).
	LinkLatency time.Duration
}

// newFig2WithProviderConfig builds the topology with a fully custom
// provider configuration (filters, peers, export policies); customer and
// internet keep their standard roles. Used by tests exercising export
// policy variations.
func newFig2WithProviderConfig(providerSrc string) (*Fig2, error) {
	return buildFig2(providerSrc, time.Millisecond)
}

// NewFig2 builds and converges the three-router topology.
func NewFig2(opts Fig2Options) (*Fig2, error) {
	if opts.CustomerFilter == "" {
		opts.CustomerFilter = CorrectCustomerFilter
	}
	if opts.LinkLatency == 0 {
		opts.LinkLatency = time.Millisecond
	}

	anycast := ""
	for _, a := range opts.Anycast {
		anycast += fmt.Sprintf("anycast %s;\n", a)
	}

	providerSrc := fmt.Sprintf(`
		router id 10.0.0.2;
		local as %d;
		%s
		%s
		peer %s { remote 10.0.0.1 as %d; import filter customer_in; }
		peer %s { remote 10.0.0.3 as %d; }
	`, ProviderAS, opts.CustomerFilter, anycast, NodeCustomer, CustomerAS, NodeInternet, InternetAS)

	return buildFig2(providerSrc, opts.LinkLatency)
}

// buildFig2 assembles the three-router topology around a provider config.
func buildFig2(providerSrc string, latency time.Duration) (*Fig2, error) {
	if latency == 0 {
		latency = time.Millisecond
	}
	customerSrc := fmt.Sprintf(`
		router id 10.0.0.1;
		local as %d;
		network %s;
		peer %s { remote 10.0.0.2 as %d; }
	`, CustomerAS, CustomerSpace, NodeProvider, ProviderAS)

	internetSrc := fmt.Sprintf(`
		router id 10.0.0.3;
		local as %d;
		peer %s { remote 10.0.0.2 as %d; }
	`, InternetAS, NodeProvider, ProviderAS)

	net := netsim.New(time.Unix(1_300_000_000, 0)) // roughly the paper's epoch

	build := func(name, src string) (*router.Router, error) {
		cfg, err := config.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("fig2: %s config: %w", name, err)
		}
		r := router.New(name, cfg, net)
		if err := net.AddNode(name, r); err != nil {
			return nil, err
		}
		return r, nil
	}

	f := &Fig2{Net: net}
	var err error
	if f.Customer, err = build(NodeCustomer, customerSrc); err != nil {
		return nil, err
	}
	if f.Provider, err = build(NodeProvider, providerSrc); err != nil {
		return nil, err
	}
	if f.Internet, err = build(NodeInternet, internetSrc); err != nil {
		return nil, err
	}
	if err := net.Connect(NodeCustomer, NodeProvider, latency); err != nil {
		return nil, err
	}
	if err := net.Connect(NodeProvider, NodeInternet, latency); err != nil {
		return nil, err
	}
	for _, r := range []*router.Router{f.Customer, f.Provider, f.Internet} {
		if err := r.Start(net.Now()); err != nil {
			return nil, err
		}
	}
	net.Run(0) // converge sessions and initial announcements
	return f, nil
}

// LoadTable replays trace dump records into the provider from the
// Internet side ("the DiCE-enabled router loads N prefixes from the rest
// of the Internet"). Returns the number of updates delivered.
func (f *Fig2) LoadTable(records []trace.Record) (int, error) {
	sess := f.Internet.Session(NodeProvider)
	if sess == nil || sess.State() != bgp.StateEstablished {
		return 0, fmt.Errorf("fig2: internet-provider session not established")
	}
	n := 0
	for _, rec := range records {
		if rec.Kind != trace.KindDump {
			continue
		}
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, err
		}
		n++
		// Drain periodically so the netsim queue stays small.
		if n%1024 == 0 {
			f.Net.Run(0)
		}
	}
	f.Net.Run(0)
	return n, nil
}

// ReplayUpdates replays incremental trace records through the
// internet→provider session, advancing virtual time to each record's
// offset. Returns the number of updates delivered.
func (f *Fig2) ReplayUpdates(records []trace.Record) (int, error) {
	sess := f.Internet.Session(NodeProvider)
	if sess == nil || sess.State() != bgp.StateEstablished {
		return 0, fmt.Errorf("fig2: internet-provider session not established")
	}
	start := f.Net.Now()
	n := 0
	for _, rec := range records {
		if rec.Kind == trace.KindDump {
			continue
		}
		f.Net.RunUntil(start.Add(rec.At))
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, err
		}
		n++
	}
	f.Net.Run(0)
	return n, nil
}
