package core

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"dice/internal/bgp"
	"dice/internal/config"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/prop"
	"dice/internal/router"
	"dice/internal/trace"
)

// Figure 2 of the paper: Customer —(customer-provider link)— Provider
// (DiCE-enabled) — Rest-of-the-Internet. Customer route filtering happens
// at the provider.

// Node names on the virtual network.
const (
	NodeCustomer = "customer"
	NodeProvider = "provider"
	NodeInternet = "internet"
)

// AS numbers and router IDs of the Fig. 2 roles.
const (
	CustomerAS = 65001
	ProviderAS = 65002
	InternetAS = 65003
)

// CustomerSpace is the customer's legitimate address plan.
var CustomerSpace = netaddr.MustParsePrefix("10.7.0.0/16")

// CorrectCustomerFilter only admits the customer's own space — the best
// common practice the paper describes ("customer route filtering ... is
// adopted by several large ISPs to defend against BGP prefix hijacking").
const CorrectCustomerFilter = `
filter customer_in {
    if net ~ 10.7.0.0/16 then accept;
    reject;
}`

// BrokenCustomerFilter is the §4.2 misconfiguration: the filter is
// "partially correct" — the first clause correctly admits the customer
// space, but the operator fat-fingered the second clause, which was meant
// to admit another customer range and instead admits any sufficiently
// specific prefix in 10.0.0.0/8. Exploration negates the first clause's
// predicates and then satisfies the second one's, constructing exactly
// the leaked prefix ranges.
const BrokenCustomerFilter = `
filter customer_in {
    if net ~ 10.7.0.0/16 then accept;
    if net ~ 10.0.0.0/8{24,32} then accept;
    reject;
}`

// ThroughputFilter is a realistic many-clause customer policy used by the
// §4.1 throughput experiments: a larger clause count gives the concolic
// engine a path space comparable to a production BIRD configuration, so
// exploration runs continuously for the whole measurement window.
const ThroughputFilter = `
filter customer_in {
    if bgp_path.len > 16 then reject;
    if origin = incomplete && med > 500 then reject;
    if net ~ 10.7.0.0/16 then accept;
    if net ~ 10.16.0.0/14{16,24} then accept;
    if net ~ 10.32.0.0/13{14,24} && local_pref >= 100 then accept;
    if net ~ 10.64.0.0/12{13,26} then accept;
    if net ~ 10.96.0.0/11{12,28} && med < 200 then accept;
    if net ~ 10.128.0.0/10{11,30} then accept;
    if net ~ 10.192.0.0/11 && bgp_path.origin != 64512 then accept;
    if net ~ 10.224.0.0/12{13,25} then accept;
    if net ~ 10.240.0.0/13 && origin = igp then accept;
    if net ~ 10.248.0.0/14{15,27} then accept;
    if net ~ 10.252.0.0/15 && local_pref > 50 then accept;
    if net ~ 10.0.0.0/8{24,32} then accept;
    reject;
}`

// MissingCustomerFilter models PCCW's side of the incident: no filtering
// at all.
const MissingCustomerFilter = `
filter customer_in {
    accept;
}`

// Fig2 is the instantiated experimental topology.
type Fig2 struct {
	Net      *netsim.Network
	Customer *router.Router
	Provider *router.Router
	Internet *router.Router
}

// Fig2Options parameterizes the topology.
type Fig2Options struct {
	// CustomerFilter is the provider's import policy for the customer
	// (one of the *CustomerFilter constants, or custom source).
	CustomerFilter string
	// Anycast space configured at the provider (FP suppression).
	Anycast []netaddr.Prefix
	// LinkLatency between nodes (0 = 1ms).
	LinkLatency time.Duration
}

// newFig2WithProviderConfig builds the topology with a fully custom
// provider configuration (filters, peers, export policies); customer and
// internet keep their standard roles. Used by tests exercising export
// policy variations.
func newFig2WithProviderConfig(providerSrc string) (*Fig2, error) {
	return buildFig2(providerSrc, time.Millisecond)
}

// NewFig2 builds and converges the three-router topology.
func NewFig2(opts Fig2Options) (*Fig2, error) {
	if opts.CustomerFilter == "" {
		opts.CustomerFilter = CorrectCustomerFilter
	}
	if opts.LinkLatency == 0 {
		opts.LinkLatency = time.Millisecond
	}

	anycast := ""
	for _, a := range opts.Anycast {
		anycast += fmt.Sprintf("anycast %s;\n", a)
	}

	providerSrc := fmt.Sprintf(`
		router id 10.0.0.2;
		local as %d;
		%s
		%s
		peer %s { remote 10.0.0.1 as %d; import filter customer_in; }
		peer %s { remote 10.0.0.3 as %d; }
	`, ProviderAS, opts.CustomerFilter, anycast, NodeCustomer, CustomerAS, NodeInternet, InternetAS)

	return buildFig2(providerSrc, opts.LinkLatency)
}

// buildFig2 assembles the three-router topology around a provider config.
func buildFig2(providerSrc string, latency time.Duration) (*Fig2, error) {
	if latency == 0 {
		latency = time.Millisecond
	}
	customerSrc := fmt.Sprintf(`
		router id 10.0.0.1;
		local as %d;
		network %s;
		peer %s { remote 10.0.0.2 as %d; }
	`, CustomerAS, CustomerSpace, NodeProvider, ProviderAS)

	internetSrc := fmt.Sprintf(`
		router id 10.0.0.3;
		local as %d;
		peer %s { remote 10.0.0.2 as %d; }
	`, InternetAS, NodeProvider, ProviderAS)

	net := netsim.New(time.Unix(1_300_000_000, 0)) // roughly the paper's epoch

	build := func(name, src string) (*router.Router, error) {
		cfg, err := config.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("fig2: %s config: %w", name, err)
		}
		r := router.New(name, cfg, net)
		if err := net.AddNode(name, r); err != nil {
			return nil, err
		}
		return r, nil
	}

	f := &Fig2{Net: net}
	var err error
	if f.Customer, err = build(NodeCustomer, customerSrc); err != nil {
		return nil, err
	}
	if f.Provider, err = build(NodeProvider, providerSrc); err != nil {
		return nil, err
	}
	if f.Internet, err = build(NodeInternet, internetSrc); err != nil {
		return nil, err
	}
	if err := net.Connect(NodeCustomer, NodeProvider, latency); err != nil {
		return nil, err
	}
	if err := net.Connect(NodeProvider, NodeInternet, latency); err != nil {
		return nil, err
	}
	for _, r := range []*router.Router{f.Customer, f.Provider, f.Internet} {
		if err := r.Start(net.Now()); err != nil {
			return nil, err
		}
	}
	net.Run(0) // converge sessions and initial announcements
	return f, nil
}

// LoadTable replays trace dump records into the provider from the
// Internet side ("the DiCE-enabled router loads N prefixes from the rest
// of the Internet"). Returns the number of updates delivered.
func (f *Fig2) LoadTable(records []trace.Record) (int, error) {
	sess := f.Internet.Session(NodeProvider)
	if sess == nil || sess.State() != bgp.StateEstablished {
		return 0, fmt.Errorf("fig2: internet-provider session not established")
	}
	n := 0
	for _, rec := range records {
		if rec.Kind != trace.KindDump {
			continue
		}
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, err
		}
		n++
		// Drain periodically so the netsim queue stays small.
		if n%1024 == 0 {
			f.Net.Run(0)
		}
	}
	f.Net.Run(0)
	return n, nil
}

// ReplayUpdates replays incremental trace records through the
// internet→provider session, advancing virtual time to each record's
// offset. Returns the number of updates delivered.
func (f *Fig2) ReplayUpdates(records []trace.Record) (int, error) {
	sess := f.Internet.Session(NodeProvider)
	if sess == nil || sess.State() != bgp.StateEstablished {
		return 0, fmt.Errorf("fig2: internet-provider session not established")
	}
	start := f.Net.Now()
	n := 0
	for _, rec := range records {
		if rec.Kind == trace.KindDump {
			continue
		}
		f.Net.RunUntil(start.Add(rec.At))
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, err
		}
		n++
	}
	f.Net.Run(0)
	return n, nil
}

// --- Federated topology files ------------------------------------------------

// The Fig2 topology above is the paper's fixed three-router testbed. The
// federated subsystem generalizes it: a Topology describes any multi-AS
// arrangement — independently-administered nodes with private configs,
// joined by latency-weighted edges — and Build instantiates it over
// netsim. cmd/dice -topology loads these from JSON files (see
// examples/routeleak/topo.json for the format).

// TopoNode is one autonomous node. Config is the node's full daemon
// configuration source (config.Parse format), given as lines so JSON
// files stay readable; peers must be named after their node names.
type TopoNode struct {
	Name   string   `json:"name"`
	Config []string `json:"config"`
}

// TopoEdge is one duplex link between two nodes.
type TopoEdge struct {
	A         string `json:"a"`
	B         string `json:"b"`
	LatencyMS int    `json:"latency_ms,omitempty"` // 0 = 1ms
}

// ExploreTarget names one per-node exploration: which node explores
// which of its peerings, under which scenario. An empty Scenario takes
// the experiment's default.
type ExploreTarget struct {
	Node     string `json:"node"`
	Peer     string `json:"peer"`
	Scenario string `json:"scenario,omitempty"`
}

// Topology is the parsed multi-AS topology description.
type Topology struct {
	Name string `json:"name"`
	// NoExportCommunity is the community ("AS:value") marking the
	// no-export policy boundary the federated route-leak oracle checks.
	// Empty = the RFC 1997 well-known NO_EXPORT (65535:65281).
	NoExportCommunity string          `json:"no_export_community,omitempty"`
	Nodes             []TopoNode      `json:"nodes"`
	Edges             []TopoEdge      `json:"edges"`
	Explore           []ExploreTarget `json:"explore,omitempty"`
	// Properties are operator-stated cross-node invariants in the
	// internal/prop language; each entry holds one or more property
	// definitions. A property whose kind matches a built-in oracle
	// (route-leak, persistent-oscillation, multi-hop-blackhole,
	// stale-route) replaces it; new kinds add oracles.
	Properties []string `json:"properties,omitempty"`
}

// ParseTopology parses and validates a topology document.
func ParseTopology(data []byte) (*Topology, error) {
	var t Topology
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	if len(t.Nodes) < 2 {
		return nil, fmt.Errorf("topology %q: need at least 2 nodes, have %d", t.Name, len(t.Nodes))
	}
	names := map[string]bool{}
	for _, n := range t.Nodes {
		if n.Name == "" {
			return nil, fmt.Errorf("topology %q: node with empty name", t.Name)
		}
		if names[n.Name] {
			return nil, fmt.Errorf("topology %q: duplicate node %q", t.Name, n.Name)
		}
		names[n.Name] = true
		if len(n.Config) == 0 {
			return nil, fmt.Errorf("topology %q: node %q has no config", t.Name, n.Name)
		}
	}
	if len(t.Edges) == 0 {
		return nil, fmt.Errorf("topology %q: no edges", t.Name)
	}
	for _, e := range t.Edges {
		if !names[e.A] || !names[e.B] {
			return nil, fmt.Errorf("topology %q: edge %s-%s references unknown node", t.Name, e.A, e.B)
		}
	}
	for _, x := range t.Explore {
		if !names[x.Node] || !names[x.Peer] {
			return nil, fmt.Errorf("topology %q: explore target %s/%s references unknown node", t.Name, x.Node, x.Peer)
		}
	}
	if _, err := t.BoundaryCommunity(); err != nil {
		return nil, err
	}
	if _, err := prop.CompileSources(t.Properties); err != nil {
		return nil, fmt.Errorf("topology %q: %w", t.Name, err)
	}
	return &t, nil
}

// LoadTopology reads and parses a topology file.
func LoadTopology(path string) (*Topology, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTopology(data)
}

// BoundaryCommunity returns the community word marking the topology's
// no-export policy boundary.
func (t *Topology) BoundaryCommunity() (uint32, error) {
	if t.NoExportCommunity == "" {
		return bgp.CommunityNoExport, nil
	}
	as, val, ok := strings.Cut(t.NoExportCommunity, ":")
	if ok {
		a, err1 := strconv.ParseUint(as, 10, 16)
		v, err2 := strconv.ParseUint(val, 10, 16)
		if err1 == nil && err2 == nil {
			return bgp.MakeCommunity(uint16(a), uint16(v)), nil
		}
	}
	return 0, fmt.Errorf("topology %q: bad no_export_community %q (want \"AS:value\")", t.Name, t.NoExportCommunity)
}

// Fabric is an instantiated topology: live routers on a virtual network.
type Fabric struct {
	Topo    *Topology
	Net     *netsim.Network
	Routers map[string]*router.Router
}

// Build instantiates the topology over a fresh netsim network, starts
// every node and converges the initial announcements.
func (t *Topology) Build() (*Fabric, error) {
	net := netsim.New(time.Unix(1_300_000_000, 0))
	f := &Fabric{Topo: t, Net: net, Routers: make(map[string]*router.Router, len(t.Nodes))}
	for _, n := range t.Nodes {
		cfg, err := config.Parse(strings.Join(n.Config, "\n"))
		if err != nil {
			return nil, fmt.Errorf("topology %q: node %s: %w", t.Name, n.Name, err)
		}
		r := router.New(n.Name, cfg, net)
		if err := net.AddNode(n.Name, r); err != nil {
			return nil, err
		}
		f.Routers[n.Name] = r
	}
	if err := t.connectEdges(net); err != nil {
		return nil, err
	}
	for _, n := range t.Nodes {
		if err := f.Routers[n.Name].Start(net.Now()); err != nil {
			return nil, err
		}
	}
	net.Run(0) // converge sessions and initial announcements
	return f, nil
}

// connectEdges wires the topology's links into a network — shared by
// Build and Shadow so live fabric and shadow always agree on link
// semantics (including the 0-means-1ms latency default).
func (t *Topology) connectEdges(net *netsim.Network) error {
	for _, e := range t.Edges {
		lat := time.Duration(e.LatencyMS) * time.Millisecond
		if lat == 0 {
			lat = time.Millisecond
		}
		if err := net.Connect(e.A, e.B, lat); err != nil {
			return err
		}
	}
	return nil
}

// Shadow builds an isolated copy of the fabric: every router cloned
// (sessions established, tables shared copy-on-write through
// rib.Overlay) onto a fresh virtual network with the same links.
// Concrete witness messages propagate over the shadow exactly as they
// would over the live fabric, without perturbing it — the federated
// analogue of exploring on checkpoint clones. Creation is O(peers) per
// node instead of O(table): a witness only dirties the prefixes it
// touches, so at full-table scale a shadow costs what fork()'s COW
// would. The live fabric must stay quiescent while shadows are alive
// (it does: nothing runs the live network during witness propagation).
func (f *Fabric) Shadow() (*Fabric, error) {
	net := netsim.New(f.Net.Now())
	s := &Fabric{Topo: f.Topo, Net: net, Routers: make(map[string]*router.Router, len(f.Routers))}
	for _, n := range f.Topo.Nodes {
		clone := f.Routers[n.Name].CloneCOW(net)
		if err := net.AddNode(n.Name, clone); err != nil {
			return nil, err
		}
		s.Routers[n.Name] = clone
	}
	if err := f.Topo.connectEdges(net); err != nil {
		return nil, err
	}
	return s, nil
}

// NodeNames returns the fabric's node names, sorted.
func (f *Fabric) NodeNames() []string {
	names := make([]string, 0, len(f.Routers))
	for n := range f.Routers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// --- Built-in federated topologies -------------------------------------------

// builtinNodeConfig renders node i of an n-node generated topology: AS
// 65001+i originating 10.(16+i).0.0/16, importing from every peer through
// a leak-prone multi-clause filter (the §4.2 misconfiguration class: a
// too-wide second accept), exporting everything (the missing NO_EXPORT
// check the routeleak oracle flags).
func builtinNodeConfig(i int, peers []int, extraNets int) TopoNode {
	name := builtinNodeName(i)
	cfg := []string{
		fmt.Sprintf("router id 10.0.0.%d;", i+1),
		fmt.Sprintf("local as %d;", 65001+i),
		fmt.Sprintf("network 10.%d.0.0/16;", 16+i),
	}
	// Extra originated /24s bulk up every node's table (the dense
	// full-table-ish benchmark shape); they stay inside the node's own
	// /16 so the peer_in filter admits them everywhere. A /16 holds 256
	// distinct /24s — more would silently duplicate, so clamp.
	if extraNets > 256 {
		extraNets = 256
	}
	for k := 0; k < extraNets; k++ {
		cfg = append(cfg, fmt.Sprintf("network 10.%d.%d.0/24;", 16+i, k))
	}
	cfg = append(cfg,
		"filter peer_in {",
		"    if bgp_path.len > 12 then reject;",
		"    if net ~ 10.16.0.0/12 then accept;",
		"    if net ~ 10.0.0.0/8{24,32} then accept;",
		"    reject;",
		"}",
	)
	for _, j := range peers {
		cfg = append(cfg, fmt.Sprintf("peer %s { remote 10.0.0.%d as %d; import filter peer_in; }",
			builtinNodeName(j), j+1, 65001+j))
	}
	return TopoNode{Name: name, Config: cfg}
}

func builtinNodeName(i int) string { return fmt.Sprintf("as%d", 65001+i) }

// LineTopology generates an n-node chain (as65001 — as65002 — ...): the
// BenchmarkFederatedRound baseline shape.
func LineTopology(n int) *Topology { return DenseLineTopology(n, 0) }

// DenseLineTopology generates an n-node chain whose nodes each
// originate extraNets additional /24 networks (clamped to the 256 a
// node's /16 can hold). With non-trivial tables the per-witness
// Fabric.Shadow cost dominates a federated round — the shape the
// COW-sharing work is measured against.
func DenseLineTopology(n, extraNets int) *Topology {
	name := fmt.Sprintf("line-%d", n)
	if extraNets > 0 {
		name = fmt.Sprintf("line-%d-dense-%d", n, extraNets)
	}
	t := &Topology{Name: name}
	for i := 0; i < n; i++ {
		var peers []int
		if i > 0 {
			peers = append(peers, i-1)
		}
		if i < n-1 {
			peers = append(peers, i+1)
		}
		t.Nodes = append(t.Nodes, builtinNodeConfig(i, peers, extraNets))
	}
	for i := 0; i+1 < n; i++ {
		t.Edges = append(t.Edges, TopoEdge{A: builtinNodeName(i), B: builtinNodeName(i + 1)})
	}
	return t
}

// MeshTopology generates an n-node full mesh, the BGP44mesh-style
// workload: every node peers with every other.
func MeshTopology(n int) *Topology {
	t := &Topology{Name: fmt.Sprintf("mesh-%d", n)}
	for i := 0; i < n; i++ {
		var peers []int
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, j)
			}
		}
		t.Nodes = append(t.Nodes, builtinNodeConfig(i, peers, 0))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			t.Edges = append(t.Edges, TopoEdge{A: builtinNodeName(i), B: builtinNodeName(j)})
		}
	}
	return t
}
