// Package core implements DiCE itself — the paper's contribution: online
// testing of a deployed node by concolic exploration from live state.
//
// One exploration round (§2.3):
//
//  1. Take a checkpoint of the live node (page-granular, COW-shared).
//  2. Derive a symbolic input template from a previously observed UPDATE
//     (selectively small fields: NLRI address/length, attribute values).
//  3. Repeatedly: clone the checkpoint, execute the instrumented message
//     handler with an engine-chosen input, record the path constraints,
//     negate one predicate, solve, repeat — while intercepting every
//     message the clones produce so the deployed system is unaffected.
//  4. Run the fault oracles over the explored outcomes (here: the origin
//     misconfiguration / prefix-hijack detector of §4.2, with anycast
//     false-positive suppression).
package core

import (
	"fmt"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/checkpoint"
	"dice/internal/concolic"
	"dice/internal/netsim"
	"dice/internal/router"
)

// Options configures one DiCE exploration round.
type Options struct {
	// Engine tunes the concolic engine (strategies, budgets, workers).
	Engine concolic.Options
	// MeasureMemory enables per-clone page accounting (the §4.1 memory
	// experiment). It costs one state serialization per run.
	MeasureMemory bool
	// CloneLock, when set, is held while forking clones from the live
	// router. Throughput experiments share it with the live update path
	// so checkpointing serializes against message processing, as fork()
	// serializes against the process it snapshots.
	CloneLock sync.Locker
	// PageSize for checkpoint accounting (0 = 4096).
	PageSize int
}

// MemoryStats reproduces the §4.1 memory measurements.
type MemoryStats struct {
	CheckpointPages int
	CheckpointBytes int
	// CheckpointUniqueFraction is the fraction of the checkpoint's pages
	// not shared with the live process state at measurement time (paper:
	// 3.45%).
	CheckpointUniqueFraction float64
	// CloneOverheadMean/Max are extra pages consumed by exploration
	// clones relative to the checkpoint (paper: mean 36.93%, max 39%).
	CloneOverheadMean float64
	CloneOverheadMax  float64
	ClonesMeasured    int
}

// Result is the outcome of one exploration round.
type Result struct {
	Report   *concolic.Report
	Findings []Finding
	// FalsePositivesFiltered counts potential hijacks suppressed because
	// the prefix is known anycast space.
	FalsePositivesFiltered int
	// CapturedMessages is the number of messages clones tried to send;
	// all of them were intercepted (isolation invariant).
	CapturedMessages int
	// WitnessesRejected counts oracle findings whose witness failed
	// validation by re-execution (dropped from Findings).
	WitnessesRejected int
	Memory            MemoryStats
	Elapsed           time.Duration
}

// DiCE drives exploration for one live router.
type DiCE struct {
	live *router.Router
	opts Options
}

// New creates a DiCE instance attached to a live router.
func New(live *router.Router, opts Options) *DiCE {
	return &DiCE{live: live, opts: opts}
}

// witnessEnv converts a finding's named input back into an engine
// assignment (IDs follow DeclareSymbolicInputs declaration order).
func witnessEnv(input map[string]uint64) map[int]uint64 {
	names := []string{
		router.StandardVars.Addr,
		router.StandardVars.Len,
		router.StandardVars.Origin,
		router.StandardVars.MED,
		router.StandardVars.LocalPref,
	}
	env := make(map[int]uint64, len(input))
	for id, name := range names {
		if v, ok := input[name]; ok {
			env[id] = v
		}
	}
	return env
}

// withLock runs fn holding the clone lock when one is configured.
func (d *DiCE) withLock(fn func()) {
	if d.opts.CloneLock != nil {
		d.opts.CloneLock.Lock()
		defer d.opts.CloneLock.Unlock()
	}
	fn()
}

// ExplorePeer runs one exploration round using the most recent UPDATE
// observed from the named peer as the seed input.
func (d *DiCE) ExplorePeer(peerName string) (*Result, error) {
	var seed *bgp.Update
	d.withLock(func() { seed = d.live.LastObserved(peerName) })
	if seed == nil {
		return nil, fmt.Errorf("dice: no observed UPDATE from peer %q to explore from", peerName)
	}
	return d.ExploreSeed(peerName, seed)
}

// ExploreSeed runs one exploration round from an explicitly provided seed
// UPDATE (normally ExplorePeer supplies the last observed one).
func (d *DiCE) ExploreSeed(peerName string, seed *bgp.Update) (*Result, error) {
	if len(seed.NLRI) == 0 {
		return nil, fmt.Errorf("dice: seed UPDATE for %q carries no NLRI", peerName)
	}
	start := time.Now()

	// Step 1: checkpoint the live node. Like the paper's fork(), this is
	// the only operation that touches the live process: one clone is
	// taken under the state lock ("the checkpoint process"), and all
	// exploration clones fork from it, never from the live router.
	sink := netsim.NewCaptureSink()
	store := checkpoint.NewStore(d.opts.PageSize)
	var ckptRouter *router.Router
	d.withLock(func() { ckptRouter = d.live.Clone(sink) })
	var ckpt *checkpoint.Snapshot
	if d.opts.MeasureMemory {
		ckpt = store.TakeChunks("checkpoint", ckptRouter.EncodeStateChunks())
	}

	var (
		mu             sync.Mutex
		cloneOverheads []float64
	)

	// Step 3: the instrumented handler. Every run forks a fresh clone of
	// the checkpoint process; its messages go to the capture sink.
	handler := func(rc *concolic.RunContext) any {
		// COW clone: O(1) like fork(). Memory accounting needs the full
		// serialized state, so MeasureMemory uses eager clones instead.
		var clone *router.Router
		if d.opts.MeasureMemory {
			clone = ckptRouter.Clone(sink)
		} else {
			clone = ckptRouter.CloneCOW(sink)
		}
		out := clone.HandleUpdateConcolic(rc, peerName, seed)
		if d.opts.MeasureMemory {
			snap := store.TakeChunks("clone", clone.EncodeStateChunks())
			over := snap.OverheadFraction(ckpt)
			snap.Release()
			mu.Lock()
			cloneOverheads = append(cloneOverheads, over)
			mu.Unlock()
		}
		return out
	}

	// Step 2: symbolic input template from the observed message.
	eng := concolic.NewEngine(handler, d.opts.Engine)
	if err := router.DeclareSymbolicInputs(eng, seed); err != nil {
		return nil, err
	}

	rep := eng.Explore()

	res := &Result{
		Report:           rep,
		CapturedMessages: sink.Count(),
		Elapsed:          time.Since(start),
	}

	// Step 4: oracles — run against the checkpoint-time routing table
	// (the "routes already in the routing table prior to starting
	// exploration", §4.2), which is exactly the checkpoint process's RIB.
	res.Findings, res.FalsePositivesFiltered = DetectHijacks(d.live.Config(), rep, ckptRouter.RIB())

	// Step 5: witness validation by re-execution. Each finding's witness
	// input came out of the constraint solver; concretization (e.g. the
	// mask computed from the run's concrete length) can make recorded
	// constraints imprecise, so every witness is replayed through the
	// instrumented handler on a fresh clone and must concretely reproduce
	// the hijack before it is reported.
	validated := res.Findings[:0]
	for _, fd := range res.Findings {
		pr := eng.RunOnce(witnessEnv(fd.Input))
		out, ok := pr.Output.(router.ExplorationOutcome)
		if ok && out.Accepted && fd.VictimPrefix.Covers(out.Prefix) && out.OriginAS != fd.VictimAS {
			fd.Validated = true
			fd.SpreadTo = out.SpreadTo
			validated = append(validated, fd)
		} else {
			res.WitnessesRejected++
		}
	}
	res.Findings = validated

	// Memory accounting (only in MeasureMemory mode — serializing and
	// hashing the full state is itself costly): compare the checkpoint
	// against the live node's current state (it kept processing while we
	// explored).
	if d.opts.MeasureMemory {
		res.Memory.CheckpointPages = ckpt.Pages()
		res.Memory.CheckpointBytes = ckpt.Size()
		var liveNow *checkpoint.Snapshot
		d.withLock(func() {
			liveNow = store.TakeChunks("live-now", d.live.EncodeStateChunks())
		})
		res.Memory.CheckpointUniqueFraction = ckpt.UniqueFraction(liveNow)
		liveNow.Release()
		if n := len(cloneOverheads); n > 0 {
			var sum, max float64
			for _, o := range cloneOverheads {
				sum += o
				if o > max {
					max = o
				}
			}
			res.Memory.CloneOverheadMean = sum / float64(n)
			res.Memory.CloneOverheadMax = max
			res.Memory.ClonesMeasured = n
		}
		ckpt.Release()
	}
	return res, nil
}
