// Package core implements DiCE itself — the paper's contribution: online
// testing of a deployed node by concolic exploration from live state.
//
// One exploration round (§2.3):
//
//  1. Take a checkpoint of the live node (page-granular, COW-shared).
//  2. Derive a symbolic input template from a previously observed message
//     (the scenario's seed: selectively small fields become symbolic).
//  3. Repeatedly: clone the checkpoint, execute the instrumented message
//     handler with an engine-chosen input, record the path constraints,
//     negate one predicate, solve, repeat — while intercepting every
//     message the clones produce so the deployed system is unaffected.
//  4. Run the scenario's fault oracles over the explored outcomes (e.g.
//     the origin misconfiguration / prefix-hijack detector of §4.2).
//
// The message-type-specific parts of a round live behind the Scenario
// interface (scenario.go); DiCE provides the round machinery once and
// keeps per-(scenario, peer) ExploreState so the paper's continuous
// online mode does not re-explore known paths every round.
package core

import (
	"fmt"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/checkpoint"
	"dice/internal/concolic"
	"dice/internal/minimize"
	"dice/internal/netsim"
	"dice/internal/router"
)

// Options configures DiCE exploration rounds.
type Options struct {
	// Engine tunes the concolic engine (strategies, budgets, workers).
	Engine concolic.Options
	// ReuseState keeps per-(scenario, peer) exploration state across
	// rounds on this DiCE instance: repeated online rounds skip paths
	// and negations already explored and share a solver memo cache.
	// When false (default) every round explores from scratch, unless
	// Engine.State is set explicitly.
	ReuseState bool
	// MeasureMemory enables per-clone page accounting (the §4.1 memory
	// experiment). It costs one state serialization per run.
	MeasureMemory bool
	// CloneLock, when set, is held while forking clones from the live
	// router. Throughput experiments share it with the live update path
	// so checkpointing serializes against message processing, as fork()
	// serializes against the process it snapshots.
	CloneLock sync.Locker
	// PageSize for checkpoint accounting (0 = 4096).
	PageSize int
	// LeakBoundaryCommunity is the community the routeleak scenario's
	// oracle treats as the no-export policy boundary (0 = the RFC 1997
	// well-known NO_EXPORT). Federated experiments set it from the
	// topology file's no_export_community.
	LeakBoundaryCommunity uint32
}

// leakBoundary resolves the routeleak oracle's boundary community.
func (o Options) leakBoundary() uint32 {
	if o.LeakBoundaryCommunity != 0 {
		return o.LeakBoundaryCommunity
	}
	return bgp.CommunityNoExport
}

// MemoryStats reproduces the §4.1 memory measurements.
type MemoryStats struct {
	CheckpointPages int
	CheckpointBytes int
	// CheckpointUniqueFraction is the fraction of the checkpoint's pages
	// not shared with the live process state at measurement time (paper:
	// 3.45%).
	CheckpointUniqueFraction float64
	// CloneOverheadMean/Max are extra pages consumed by exploration
	// clones relative to the checkpoint (paper: mean 36.93%, max 39%).
	CloneOverheadMean float64
	CloneOverheadMax  float64
	ClonesMeasured    int
}

// Result is the outcome of one exploration round.
type Result struct {
	// Scenario is the name of the scenario that ran.
	Scenario string
	Report   *concolic.Report
	Findings []Finding
	// Details carries scenario-specific analysis beyond Findings (e.g.
	// *OpenExploration for "open", *WithdrawExploration for "withdraw");
	// nil when the scenario reports through Findings alone.
	Details any
	// FalsePositivesFiltered counts potential hijacks suppressed because
	// the prefix is known anycast space.
	FalsePositivesFiltered int
	// CapturedMessages is the number of messages clones tried to send;
	// all of them were intercepted (isolation invariant).
	CapturedMessages int
	// WitnessesRejected counts oracle findings whose witness failed
	// validation by re-execution (dropped from Findings).
	WitnessesRejected int
	// Minimization aggregates witness-minimization work over this
	// target's findings (nil unless a federated round ran with
	// FederatedOptions.Minimize and a witness triggered violations).
	Minimization *minimize.Stats
	Memory       MemoryStats
	Elapsed      time.Duration
}

// DiCE drives exploration for one live router.
type DiCE struct {
	live *router.Router
	opts Options

	mu     sync.Mutex
	states map[string]*concolic.ExploreState // keyed scenario + "/" + peer
}

// New creates a DiCE instance attached to a live router.
func New(live *router.Router, opts Options) *DiCE {
	return &DiCE{
		live:   live,
		opts:   opts,
		states: make(map[string]*concolic.ExploreState),
	}
}

// State returns the cross-round exploration state accumulated for a
// scenario and peer, or nil if no round has run with ReuseState set.
func (d *DiCE) State(scenario, peer string) *concolic.ExploreState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.states[scenario+"/"+peer]
}

// stateFor returns (allocating on first use) the shared state for a
// scenario and peer.
func (d *DiCE) stateFor(scenario, peer string) *concolic.ExploreState {
	d.mu.Lock()
	defer d.mu.Unlock()
	key := scenario + "/" + peer
	st, ok := d.states[key]
	if !ok {
		st = concolic.NewExploreState()
		d.states[key] = st
	}
	return st
}

// withLock runs fn holding the clone lock when one is configured.
func (d *DiCE) withLock(fn func()) {
	if d.opts.CloneLock != nil {
		d.opts.CloneLock.Lock()
		defer d.opts.CloneLock.Unlock()
	}
	fn()
}

// ExploreScenario runs one exploration round of the named scenario
// against peerName, seeding from the live router's observed state.
func (d *DiCE) ExploreScenario(name, peerName string) (*Result, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("dice: unknown scenario %q (registered: %v)", name, ScenarioNames())
	}
	var (
		seed any
		err  error
	)
	d.withLock(func() { seed, err = sc.Seed(d.live, peerName) })
	if err != nil {
		return nil, err
	}
	return d.exploreRound(sc, peerName, seed)
}

// ExploreScenarioSeed runs one round of the named scenario from an
// explicitly provided seed (whose type must match the scenario's own).
func (d *DiCE) ExploreScenarioSeed(name, peerName string, seed any) (*Result, error) {
	sc, ok := LookupScenario(name)
	if !ok {
		return nil, fmt.Errorf("dice: unknown scenario %q (registered: %v)", name, ScenarioNames())
	}
	return d.exploreRound(sc, peerName, seed)
}

// ExplorePeer runs one UPDATE exploration round using the most recent
// UPDATE observed from the named peer as the seed input.
func (d *DiCE) ExplorePeer(peerName string) (*Result, error) {
	return d.ExploreScenario(ScenarioUpdate, peerName)
}

// ExploreSeed runs one UPDATE exploration round from an explicitly
// provided seed (normally ExplorePeer supplies the last observed one).
func (d *DiCE) ExploreSeed(peerName string, seed *bgp.Update) (*Result, error) {
	if len(seed.NLRI) == 0 {
		return nil, fmt.Errorf("dice: seed UPDATE for %q carries no NLRI", peerName)
	}
	return d.exploreRound(updateScenario{}, peerName, seed)
}

// exploreRound is the scenario-independent round machinery: checkpoint,
// clone-per-run isolated execution, optional memory accounting, optional
// cross-round state, then the scenario's oracles.
func (d *DiCE) exploreRound(sc Scenario, peerName string, seed any) (*Result, error) {
	start := time.Now()

	// Step 1: checkpoint the live node. Like the paper's fork(), this is
	// the only operation that touches the live process: one clone is
	// taken under the state lock ("the checkpoint process"), and all
	// exploration clones fork from it, never from the live router.
	sink := netsim.NewCaptureSink()
	store := checkpoint.NewStore(d.opts.PageSize)
	var ckptRouter *router.Router
	d.withLock(func() { ckptRouter = d.live.Clone(sink) })
	var ckpt *checkpoint.Snapshot
	if d.opts.MeasureMemory {
		ckpt = store.TakeChunks("checkpoint", ckptRouter.EncodeStateChunks())
	}

	var (
		mu             sync.Mutex
		cloneOverheads []float64
	)

	// Step 3: the instrumented handler. Every run forks a fresh clone of
	// the checkpoint process; its messages go to the capture sink.
	handler := func(rc *concolic.RunContext) any {
		// COW clone: O(1) like fork(). Memory accounting needs the full
		// serialized state, so MeasureMemory uses eager clones instead.
		var clone *router.Router
		if d.opts.MeasureMemory {
			clone = ckptRouter.Clone(sink)
		} else {
			clone = ckptRouter.CloneCOW(sink)
		}
		out := sc.Execute(rc, clone, peerName, seed)
		if d.opts.MeasureMemory {
			snap := store.TakeChunks("clone", clone.EncodeStateChunks())
			over := snap.OverheadFraction(ckpt)
			snap.Release()
			mu.Lock()
			cloneOverheads = append(cloneOverheads, over)
			mu.Unlock()
		}
		return out
	}

	// Step 2: symbolic input template from the observed message, with
	// cross-round state attached in online (ReuseState) mode.
	engOpts := d.opts.Engine
	if engOpts.State == nil && d.opts.ReuseState {
		engOpts.State = d.stateFor(sc.Name(), peerName)
	}
	eng := concolic.NewEngine(handler, engOpts)
	if err := sc.Declare(eng, seed); err != nil {
		return nil, err
	}

	rep := eng.Explore()

	res := &Result{
		Scenario:         sc.Name(),
		Report:           rep,
		CapturedMessages: sink.Count(),
	}

	// Step 4: the scenario's oracles, run against the checkpoint-time
	// state (witness validation included).
	sc.Analyze(d, &Round{Peer: peerName, Seed: seed, Engine: eng, Checkpoint: ckptRouter}, res)

	// Memory accounting (only in MeasureMemory mode — serializing and
	// hashing the full state is itself costly): compare the checkpoint
	// against the live node's current state (it kept processing while we
	// explored).
	if d.opts.MeasureMemory {
		res.Memory.CheckpointPages = ckpt.Pages()
		res.Memory.CheckpointBytes = ckpt.Size()
		var liveNow *checkpoint.Snapshot
		d.withLock(func() {
			liveNow = store.TakeChunks("live-now", d.live.EncodeStateChunks())
		})
		res.Memory.CheckpointUniqueFraction = ckpt.UniqueFraction(liveNow)
		liveNow.Release()
		if n := len(cloneOverheads); n > 0 {
			var sum, max float64
			for _, o := range cloneOverheads {
				sum += o
				if o > max {
					max = o
				}
			}
			res.Memory.CloneOverheadMean = sum / float64(n)
			res.Memory.CloneOverheadMax = max
			res.Memory.ClonesMeasured = n
		}
		ckpt.Release()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
