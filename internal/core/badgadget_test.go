package core

import (
	"testing"

	"dice/internal/concolic"
)

// The examples/badgadget fixture is Griffin's BAD GADGET dispute wheel:
// three routers around a hub, each steering local_pref by path shape so
// it prefers the route THROUGH its clockwise neighbor exactly when that
// neighbor uses its own direct route (bgp_path.len = 3 on {17,32}
// more-specifics). No stable routing exists for such a configuration,
// so once a more-specific witness enters the wheel the shadow fabric
// churns forever — the persistent-oscillation oracle must fire because
// the system genuinely diverges, not because a step bound was tuned
// down. The initial /16 convergence is untouched (the steering clause
// gates on more-specific prefixes), so the fixture builds and explores
// normally.

// TestBadGadgetOscillation: a federated round over the fixture topology
// confirms persistent oscillation at a generous propagation bound.
func TestBadGadgetOscillation(t *testing.T) {
	topo, err := LoadTopology("../../examples/badgadget/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFederatedExperiment(topo, FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
		// A bound ~5x the default: divergence must survive it. A fixture
		// that only "oscillates" against a tight bound would converge
		// somewhere in here and the assertion below would catch it.
		MaxPropagationSteps: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 1 || res.Targets[0].Err != nil {
		t.Fatalf("targets: %+v", res.Targets)
	}
	if len(res.Targets[0].Result.Findings) == 0 {
		t.Fatal("exploration found no leak witnesses to inject")
	}
	if res.WitnessesInjected == 0 {
		t.Fatal("no witnesses injected")
	}

	osc := 0
	for _, v := range res.Violations {
		if v.Kind == "persistent-oscillation" {
			osc++
			if v.Node != "hub" || v.Peer != "stub" {
				t.Errorf("oscillation attributed to %s/%s, want hub/stub: %s", v.Node, v.Peer, v)
			}
		}
	}
	if osc == 0 {
		t.Fatalf("dispute wheel produced no persistent-oscillation at a 20000-step bound; violations: %v", res.Violations)
	}
}

// TestBadGadgetConvergesWithoutSteering: the same topology with the
// steering clauses removed must converge — proving the oscillation
// comes from the dispute wheel's preferences, not from the shape of the
// fabric or the witness itself.
func TestBadGadgetConvergesWithoutSteering(t *testing.T) {
	topo, err := LoadTopology("../../examples/badgadget/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Nodes {
		cfg := topo.Nodes[i].Config
		out := cfg[:0]
		for _, line := range cfg {
			if line == "    if net ~ 10.96.0.0/11{17,32} && bgp_path.len = 3 then set local_pref 200;" {
				continue // drop the dispute-wheel preference
			}
			out = append(out, line)
		}
		topo.Nodes[i].Config = out
	}
	fe, err := NewFederatedExperiment(topo, FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Kind == "persistent-oscillation" {
			t.Errorf("steering-free wheel still oscillates: %s", v)
		}
	}
}
