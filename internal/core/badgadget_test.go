package core

import (
	"strings"
	"testing"

	"dice/internal/concolic"
)

// The examples/badgadget fixture is Griffin's BAD GADGET dispute wheel:
// three routers around a hub, each steering local_pref by path shape so
// it prefers the route THROUGH its clockwise neighbor exactly when that
// neighbor uses its own direct route (bgp_path.len = 3 on {17,32}
// more-specifics). No stable routing exists for such a configuration,
// so once a more-specific witness enters the wheel the shadow fabric
// churns forever — the persistent-oscillation oracle must fire because
// the system genuinely diverges, not because a step bound was tuned
// down. The initial /16 convergence is untouched (the steering clause
// gates on more-specific prefixes), so the fixture builds and explores
// normally.

// TestBadGadgetOscillation: a federated round over the fixture topology
// confirms persistent oscillation at a generous propagation bound.
func TestBadGadgetOscillation(t *testing.T) {
	topo, err := LoadTopology("../../examples/badgadget/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	fe, err := NewFederatedExperiment(topo, FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
		// A bound ~5x the default: divergence must survive it. A fixture
		// that only "oscillates" against a tight bound would converge
		// somewhere in here and the assertion below would catch it.
		MaxPropagationSteps: 20000,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Targets) != 1 || res.Targets[0].Err != nil {
		t.Fatalf("targets: %+v", res.Targets)
	}
	if len(res.Targets[0].Result.Findings) == 0 {
		t.Fatal("exploration found no leak witnesses to inject")
	}
	if res.WitnessesInjected == 0 {
		t.Fatal("no witnesses injected")
	}

	osc := 0
	for _, v := range res.Violations {
		if v.Kind == "persistent-oscillation" {
			osc++
			if v.Node != "hub" || v.Peer != "stub" {
				t.Errorf("oscillation attributed to %s/%s, want hub/stub: %s", v.Node, v.Peer, v)
			}

			// Per-wave delivery telemetry: genuine divergence shows a
			// SUSTAINED tail — the final waves keep delivering at a
			// steady clip right up to the bound. A decaying tail would
			// mean the wheel was converging (slowly) when the bound hit,
			// i.e. a tuned-down bound masquerading as divergence.
			if v.Waves == 0 {
				t.Errorf("oscillation carries no wave count: %s", v)
			}
			if len(v.WaveTail) != WaveTailLen {
				t.Fatalf("wave tail has %d entries, want %d: %v", len(v.WaveTail), WaveTailLen, v.WaveTail)
			}
			for i, n := range v.WaveTail {
				if n == 0 {
					t.Errorf("wave tail entry %d is empty — deliveries decayed, system was converging: %v", i, v.WaveTail)
				}
			}
			// The wheel's churn is periodic: the tail repeats one steady
			// per-wave delivery count, it does not taper. The final wave
			// may be truncated mid-flight by the step bound itself, so it
			// only has to stay within the steady rate, not match it.
			steady := v.WaveTail[0]
			for _, n := range v.WaveTail[1 : len(v.WaveTail)-1] {
				if n != steady {
					t.Errorf("wave tail not steady-state: %v", v.WaveTail)
				}
			}
			if last := v.WaveTail[len(v.WaveTail)-1]; last > steady {
				t.Errorf("truncated final wave exceeds the steady rate: %v", v.WaveTail)
			}
			if !strings.Contains(v.Detail, "waves, tail deliveries") {
				t.Errorf("oscillation detail does not surface the wave telemetry: %s", v.Detail)
			}
		}
	}
	if osc == 0 {
		t.Fatalf("dispute wheel produced no persistent-oscillation at a 20000-step bound; violations: %v", res.Violations)
	}
}

// TestBadGadgetConvergesWithoutSteering: the same topology with the
// steering clauses removed must converge — proving the oscillation
// comes from the dispute wheel's preferences, not from the shape of the
// fabric or the witness itself.
func TestBadGadgetConvergesWithoutSteering(t *testing.T) {
	topo, err := LoadTopology("../../examples/badgadget/topo.json")
	if err != nil {
		t.Fatal(err)
	}
	for i := range topo.Nodes {
		cfg := topo.Nodes[i].Config
		out := cfg[:0]
		for _, line := range cfg {
			if line == "    if net ~ 10.96.0.0/11{17,32} && bgp_path.len = 3 then set local_pref 200;" {
				continue // drop the dispute-wheel preference
			}
			out = append(out, line)
		}
		topo.Nodes[i].Config = out
	}
	fe, err := NewFederatedExperiment(topo, FederatedOptions{
		Engine:  concolic.Options{MaxRuns: 1000},
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := fe.Round()
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Violations {
		if v.Kind == "persistent-oscillation" {
			t.Errorf("steering-free wheel still oscillates: %s", v)
		}
	}
}
