package core

import (
	"testing"
	"time"

	"dice/internal/filter"
)

// filterParse is a local alias to keep test call sites short.
func filterParse(src string) (*filter.Filter, error) { return filter.Parse(src) }

func tinyScale() Scale {
	return Scale{TableSize: 500, UpdateCount: 100, ExploreRuns: 200, Seed: 1}
}

func TestRunE1Memory(t *testing.T) {
	res, err := RunE1Memory(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointPages == 0 {
		t.Fatal("no checkpoint pages")
	}
	// The checkpoint diverged from the live state (update replay touched
	// some buckets) but must share most pages — the fork-COW property.
	if res.UniqueFraction <= 0 || res.UniqueFraction > 0.6 {
		t.Fatalf("unique fraction %v out of plausible range", res.UniqueFraction)
	}
	if res.ClonesMeasured == 0 {
		t.Fatal("no clones measured")
	}
	// Clones must cost far less than a full copy (paper: +36.93% of
	// checkpoint pages; ours is tighter because only the touched RIB
	// bucket diverges).
	if res.CloneOverheadMean >= 1.0 {
		t.Fatalf("clone overhead %v — no sharing at all", res.CloneOverheadMean)
	}
	if res.CloneOverheadMax < res.CloneOverheadMean {
		t.Fatal("max < mean")
	}
}

func TestRunE2FullLoad(t *testing.T) {
	res, err := RunE2FullLoad(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.UpdatesPerSecWith <= 0 || res.UpdatesPerSecWithout <= 0 {
		t.Fatalf("rates: %+v", res)
	}
	// Shape check: exploration may slow the router, but not by an order
	// of magnitude (paper: 8%). Allow generous slack for CI noise.
	if res.UpdatesPerSecWith < res.UpdatesPerSecWithout*0.2 {
		t.Fatalf("impact too large: %+v", res)
	}
}

func TestRunE3Steady(t *testing.T) {
	s := tinyScale()
	s.UpdateCount = 50
	res, err := RunE3Steady(s, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Paced replay: both rates are pinned by the pacing window, so the
	// difference must be negligible (paper: 0.272 vs 0.287).
	if res.ImpactPercent > 25 || res.ImpactPercent < -25 {
		t.Fatalf("steady-state impact %v%% not negligible: %+v", res.ImpactPercent, res)
	}
}

func TestRunE4RouteLeak(t *testing.T) {
	res, err := RunE4RouteLeak(tinyScale(), BrokenCustomerFilter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("no findings: %+v", res)
	}
	if !res.YouTubeDetected {
		t.Fatalf("YouTube-analogue victim not detected among %d findings", len(res.Findings))
	}
	// The correct filter must stay silent.
	clean, err := RunE4RouteLeak(tinyScale(), CorrectCustomerFilter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.Findings) != 0 {
		t.Fatalf("correct filter produced findings: %v", clean.Findings)
	}
}

func TestRunA1SymbolicMarking(t *testing.T) {
	res, err := RunA1SymbolicMarking(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if res.FieldValidRatio != 1.0 {
		t.Fatalf("field marking should always generate valid messages: %v", res.FieldValidRatio)
	}
	// Raw-byte marking wastes most of its budget on invalid messages —
	// the §3.2 claim the design rests on.
	if res.RawValidRatio >= 0.9 {
		t.Fatalf("raw marking valid ratio %v suspiciously high", res.RawValidRatio)
	}
	if res.FieldPolicyPaths < 2 {
		t.Fatalf("field marking reached too few policy paths: %d", res.FieldPolicyPaths)
	}
}

func TestRunA2CheckpointVsReplay(t *testing.T) {
	res, err := RunA2CheckpointVsReplay(2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.CheckpointTime <= 0 || res.ReplayTime <= 0 {
		t.Fatalf("times: %+v", res)
	}
	// Checkpointing must beat replaying the history (the whole point of
	// exploring from live state, §2.3).
	if res.SpeedupFactor < 2 {
		t.Fatalf("checkpoint speedup only %.1fx over replay", res.SpeedupFactor)
	}
}

func TestAuditFilterFindsDeadClause(t *testing.T) {
	// Clause 2 is shadowed: anything matching 10.7.0.0/24 already matched
	// 10.7.0.0/16 in clause 1, so its condition can never be reached-true.
	// Clause 3 is impossible for valid messages (len > 32).
	f, err := filterParse(`
		filter audit_me {
			if net ~ 10.7.0.0/16 then accept;
			if net ~ 10.7.0.0/24 then accept;
			if net.len > 32 then accept;
			reject;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	audit := AuditFilter(f, 3000)
	if audit.Paths < 2 {
		t.Fatalf("audit explored too little: %+v", audit)
	}
	deadConds := map[string]bool{}
	for _, sc := range audit.DeadTrue {
		deadConds[sc.Cond] = true
	}
	foundShadowed, foundImpossible := false, false
	for cond := range deadConds {
		if cond == "net ~ 10.7.0.0/24{24,32}" {
			foundShadowed = true
		}
		if cond == "net.len > 32" {
			foundImpossible = true
		}
	}
	if !foundImpossible {
		t.Errorf("impossible clause not flagged; dead=%v", deadConds)
	}
	if !foundShadowed {
		t.Errorf("shadowed clause not flagged; dead=%v", deadConds)
	}
	// The healthy first clause must not be flagged.
	for _, sc := range audit.DeadTrue {
		if sc.Site == "0" {
			t.Errorf("live clause flagged dead: %+v", sc)
		}
	}
	if audit.String() == "" {
		t.Fatal("empty report")
	}
}

func TestAuditFilterCleanConfig(t *testing.T) {
	f, err := filterParse(CorrectCustomerFilter)
	if err != nil {
		t.Fatal(err)
	}
	audit := AuditFilter(f, 2000)
	if len(audit.DeadTrue) != 0 {
		t.Fatalf("clean filter flagged: %+v", audit.DeadTrue)
	}
}
