package core

import (
	"os"
	"strings"
	"testing"

	"dice/internal/checkpoint"
	"dice/internal/concolic"
)

// These tests pin down the serialization contracts the distributed wire
// protocol (internal/dist) depends on: a node's state must round-trip
// bytes-exactly through the page-deduplicating checkpoint store, the
// restored router must explore like the original, and warm cross-round
// ExploreState must compose with snapshot restoration — the agent keeps
// state server-side across Explore calls while every round runs over a
// freshly restored clone.

// TestCheckpointChunksRoundTrip: EncodeStateChunks through a checkpoint
// store reassembles to the exact EncodeState bytes, restores to an
// equivalent router, and re-encodes identically (a stable fixpoint —
// what lets snapshots be shipped, stored and compared by content).
func TestCheckpointChunksRoundTrip(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(300, 0)); err != nil {
		t.Fatal(err)
	}

	store := checkpoint.NewStore(0)
	snap := store.TakeChunks("provider", f.Provider.EncodeStateChunks())
	state := snap.Bytes()
	if want := f.Provider.EncodeState(); string(state) != string(want) {
		t.Fatalf("chunked store round-trip differs: %d vs %d bytes", len(state), len(want))
	}

	restored, err := ExploreSnapshot(NodeProvider, f.Provider.Config(), state, NodeCustomer,
		f.Provider.LastObserved(NodeCustomer), Options{Engine: concolic.Options{MaxRuns: 50}})
	if err != nil {
		t.Fatal(err)
	}
	if restored.Report.Runs == 0 {
		t.Fatal("restored snapshot explored nothing")
	}

	// Unchanged state re-ingested must share every page (the fork-COW
	// property the agent's Checkpoint RPC reports as UniquePages 0).
	before := store.Stats()
	snap2 := store.TakeChunks("provider-again", f.Provider.EncodeStateChunks())
	after := store.Stats()
	if fresh := (after.Ingested - before.Ingested) - (after.SharedHits - before.SharedHits); fresh != 0 {
		t.Errorf("unchanged state re-checkpointed with %d unshared pages", fresh)
	}
	if got := snap2.SharedPages(snap); got != snap.Pages() {
		t.Errorf("snapshots share %d of %d pages", got, snap.Pages())
	}
}

// TestExploreSnapshotWarmState: repeated rounds over restored snapshots
// with a shared ExploreState are incremental — the second restoration
// of the same state re-discovers nothing and skips the known negation
// queries. This is exactly the agent's Explore lifecycle under
// ReuseState: state lives across rounds, every round restores fresh.
func TestExploreSnapshotWarmState(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(300, 0)); err != nil {
		t.Fatal(err)
	}
	seed := f.Provider.LastObserved(NodeCustomer)
	state := f.Provider.EncodeState()

	warm := concolic.NewExploreState()
	opts := func() Options {
		return Options{Engine: concolic.Options{MaxRuns: 2000, State: warm}}
	}

	cold, err := ExploreSnapshot(NodeProvider, f.Provider.Config(), state, NodeCustomer, seed, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(cold.Report.Paths) == 0 {
		t.Fatal("cold snapshot round explored no paths")
	}

	rewarmed, err := ExploreSnapshot(NodeProvider, f.Provider.Config(), state, NodeCustomer, seed, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rewarmed.Report.Paths) != 0 {
		t.Errorf("warm round over the same snapshot found %d new paths, want 0", len(rewarmed.Report.Paths))
	}
	if rewarmed.Report.SkippedNegations == 0 {
		t.Error("warm round skipped no negations")
	}
	st := warm.Stats()
	if st.Rounds != 2 || st.Paths == 0 {
		t.Errorf("warm state stats after two rounds: %+v", st)
	}
}

// TestExploreSnapshotRejectsCorruptState: every truncation/corruption
// class in the checkpoint format surfaces as an error, not a panic or a
// silently partial router.
func TestExploreSnapshotRejectsCorruptState(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(50, 0)); err != nil {
		t.Fatal(err)
	}
	seed := f.Provider.LastObserved(NodeCustomer)
	state := f.Provider.EncodeState()

	cases := map[string][]byte{
		"empty":        nil,
		"bad magic":    append([]byte("NOPE"), state[4:]...),
		"truncated":    state[:len(state)/2],
		"extra prefix": append(append([]byte{}, state...), 0xde, 0xad),
	}
	for name, corrupt := range cases {
		if _, err := ExploreSnapshot(NodeProvider, f.Provider.Config(), corrupt, NodeCustomer, seed,
			Options{Engine: concolic.Options{MaxRuns: 10}}); err == nil {
			t.Errorf("%s state restored without error", name)
		}
	}
}

// TestTopologyParseErrorPaths: the validation classes TestParseTopology
// doesn't reach — empty node names, empty configs, dangling explore
// targets, out-of-range boundary communities, unreadable files and
// config-source errors surfacing from Build.
func TestTopologyParseErrorPaths(t *testing.T) {
	bad := map[string]string{
		"empty node name": `{"name":"x","nodes":[{"name":"","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"","b":"b"}]}`,
		"empty config":    `{"name":"x","nodes":[{"name":"a","config":[]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"b"}]}`,
		"dangling explore": `{"name":"x","nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],` +
			`"edges":[{"a":"a","b":"b"}],"explore":[{"node":"a","peer":"zzz"}]}`,
		"oversized community AS": `{"name":"x","no_export_community":"70000:1",` +
			`"nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"b"}]}`,
		"non-numeric community": `{"name":"x","no_export_community":"a:b",` +
			`"nodes":[{"name":"a","config":["x"]},{"name":"b","config":["x"]}],"edges":[{"a":"a","b":"b"}]}`,
		"not json": `{"name":`,
	}
	for name, src := range bad {
		if _, err := ParseTopology([]byte(src)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}

	if _, err := LoadTopology("testdata/definitely-does-not-exist.json"); !os.IsNotExist(err) {
		t.Errorf("missing file: err = %v, want not-exist", err)
	}

	// Valid document, broken config source: the error must surface from
	// Build with the node named.
	topo, err := ParseTopology([]byte(`{
	  "name": "badcfg",
	  "nodes": [
	    {"name": "a", "config": ["this is not a config;"]},
	    {"name": "b", "config": ["router id 10.0.0.2;", "local as 2;", "peer a { remote 10.0.0.1 as 1; }"]}
	  ],
	  "edges": [{"a": "a", "b": "b"}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := topo.Build(); err == nil || !strings.Contains(err.Error(), `node a`) {
		t.Errorf("Build error = %v, want config error naming node a", err)
	}
}
