package core

import (
	"dice/internal/bgp"
	"dice/internal/config"
	"dice/internal/netsim"
	"dice/internal/router"
)

// ExploreSnapshot restores a serialized checkpoint and runs a DiCE
// exploration round over it — the §2.4 vision made concrete: "enable
// remote nodes to checkpoint their state and process these messages in
// isolation over their checkpointed states". The state bytes and the
// node's configuration never leave the node's own administrative domain;
// this function runs wherever the domain chooses (e.g. a testing replica),
// and the restored router's traffic goes to a capture sink, never the
// wire.
func ExploreSnapshot(name string, cfg *config.Config, state []byte, peerName string, seed *bgp.Update, opts Options) (*Result, error) {
	restored, err := router.DecodeState(name, cfg, netsim.NewCaptureSink(), state)
	if err != nil {
		return nil, err
	}
	d := New(restored, opts)
	return d.ExploreSeed(peerName, seed)
}
