package core

import (
	"errors"
	"fmt"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/netsim"
	"dice/internal/router"
)

// ExploreSnapshot restores a serialized checkpoint and runs a DiCE
// exploration round over it — the §2.4 vision made concrete: "enable
// remote nodes to checkpoint their state and process these messages in
// isolation over their checkpointed states". The state bytes and the
// node's configuration never leave the node's own administrative domain;
// this function runs wherever the domain chooses (e.g. a testing replica),
// and the restored router's traffic goes to a capture sink, never the
// wire.
func ExploreSnapshot(name string, cfg *config.Config, state []byte, peerName string, seed *bgp.Update, opts Options) (*Result, error) {
	restored, err := router.DecodeState(name, cfg, netsim.NewCaptureSink(), state)
	if err != nil {
		return nil, err
	}
	d := New(restored, opts)
	return d.ExploreSeed(peerName, seed)
}

// ErrSeedNotShippable marks a scenario whose seed is not a concrete
// UPDATE and therefore cannot travel to an exploration replica; the
// caller explores such targets on the node itself.
var ErrSeedNotShippable = errors.New("scenario seed is not a BGP UPDATE; explore on the node")

// ShippableSeed derives tg's scenario seed from the live node in the
// form a replica can receive: a concrete UPDATE. A missing observation
// returns *SeedUnavailableError (same contract as PrepareTarget); a
// scenario whose seed is some other type returns ErrSeedNotShippable.
func ShippableSeed(live *router.Router, tg ResolvedTarget) (*bgp.Update, error) {
	sc, ok := LookupScenario(tg.Scenario)
	if !ok {
		return nil, fmt.Errorf("unknown scenario %q (registered: %v)", tg.Scenario, ScenarioNames())
	}
	seed, err := sc.Seed(live, tg.Peer)
	if err != nil {
		return nil, &SeedUnavailableError{Err: err}
	}
	u, ok := seed.(*bgp.Update)
	if !ok {
		return nil, ErrSeedNotShippable
	}
	return u, nil
}

// PrepareRestored is the replica-side counterpart of the node agent's
// explore pipeline: restore the shipped checkpoint, then run the exact
// PrepareTarget prep over the restored router with the shipped seed —
// same scenario lookup, checkpoint clone, COW handler, declaration. The
// caller runs tp.Engine.Explore() and tp.Analyze(restored, ...), so a
// replica reproduces the agent's per-target results finding for finding.
// Warm cross-round memory (a decoded ExploreState) may be attached via
// engOpts.State; nil explores cold.
func PrepareRestored(node string, cfg *config.Config, state []byte, tg ResolvedTarget, seed *bgp.Update, engOpts concolic.Options) (*TargetPrep, *router.Router, error) {
	restored, err := router.DecodeState(node, cfg, netsim.NewCaptureSink(), state)
	if err != nil {
		return nil, nil, err
	}
	tp, err := PrepareTargetSeeded(restored, tg, seed, engOpts)
	if err != nil {
		return nil, nil, err
	}
	return tp, restored, nil
}
