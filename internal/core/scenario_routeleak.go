package core

import (
	"fmt"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
	"dice/internal/router"
	"dice/internal/solver"
	"dice/internal/sym"
)

// routeleakScenario explores the policy edge an announcement crosses when
// a peer sends it: the symbolic input is the (prefix, AS-path origin,
// community) triple. Its local oracle asks, for every accepted path that
// the export policy would re-announce, whether the path condition admits
// the announcement carrying the RFC 1997 NO_EXPORT community — i.e.
// whether a route the peer explicitly scoped to this AS would still
// escape the policy boundary. The federated layer then confirms findings
// cross-node by propagating the concrete witness over a shadow topology.
type routeleakScenario struct{}

func init() { RegisterScenario(routeleakScenario{}) }

// Variable IDs follow DeclareLeakInputs declaration order.
const (
	leakAddrVarID = 0
	leakLenVarID  = 1
	leakOrigVarID = 2
	leakCommVarID = 3
)

func (routeleakScenario) Name() string { return ScenarioRouteLeak }

func (routeleakScenario) Description() string {
	return "no-export boundary exploration: symbolic (prefix, AS-path origin, community) with a route-leak oracle"
}

func (routeleakScenario) Seed(live *router.Router, peer string) (any, error) {
	// The most recent announcement, not the most recent message: a
	// replayed history ending in a withdraw must still leave a usable
	// announcement template.
	seed := live.LastAnnounced(peer)
	if seed == nil {
		return nil, fmt.Errorf("dice: no observed UPDATE from peer %q to explore from", peer)
	}
	return seed, nil
}

func (routeleakScenario) Declare(eng *concolic.Engine, seed any) error {
	return router.DeclareLeakInputs(eng, seed.(*bgp.Update))
}

func (routeleakScenario) Execute(rc *concolic.RunContext, clone *router.Router, peer string, seed any) any {
	return clone.HandleLeakConcolic(rc, peer, seed.(*bgp.Update))
}

func (routeleakScenario) Analyze(d *DiCE, round *Round, res *Result) {
	boundary := d.opts.leakBoundary()
	commVar := sym.NewVar(leakCommVarID, router.StandardLeakVars.Community, 32)
	noExport := sym.NewConst(uint64(boundary), 32)

	seen := map[string]bool{}
	for pi := range res.Report.Paths {
		p := &res.Report.Paths[pi]
		out, ok := p.Output.(router.LeakOutcome)
		if !ok || !out.Accepted || len(out.SpreadTo) == 0 {
			continue
		}
		// Does this accepting-and-exporting path admit the announcement
		// carrying NO_EXPORT? If the export policy honored the community
		// the constraint set forbids it and the query is Unsat.
		cs := p.Constraints()
		query := append(append([]sym.Expr(nil), cs...), sym.NewCmp(sym.OpEq, commVar, noExport))
		env, sat := solver.New(solver.Options{Hint: p.Env}).Solve(query)
		if sat != solver.Sat {
			continue
		}

		// Witness validation by re-execution: the solver's assignment must
		// concretely reproduce accept + boundary community + spread on a
		// fresh clone.
		pr := round.Engine.RunOnce(env)
		vout, ok := pr.Output.(router.LeakOutcome)
		if !ok || !vout.Accepted || vout.Community != boundary || len(vout.SpreadTo) == 0 {
			res.WitnessesRejected++
			continue
		}

		key := fmt.Sprintf("%s|%d|%v", vout.Prefix, vout.OriginAS, vout.SpreadTo)
		if seen[key] {
			continue
		}
		seen[key] = true

		region := RangeDesc{AddrHi: netaddr.Addr(0xffffffff), LenHi: 32}
		if info, feasible := solver.Analyze(cs); feasible {
			region = regionFrom(info) // leak var IDs 0/1 match the shared helper
		}
		res.Findings = append(res.Findings, Finding{
			Kind:      "route-leak",
			Peer:      out.Peer,
			Prefix:    vout.Prefix,
			LeakRange: region,
			OriginAS:  vout.OriginAS,
			Seq:       p.Seq,
			Input:     leakNamedInput(pr.Env),
			Validated: true,
			SpreadTo:  vout.SpreadTo,
		})
	}
}

// WitnessUpdate materializes the concrete announcement behind a finding:
// the witness prefix, presented over the peer's AS with the witness
// origin, carrying the witness community. The federated layer injects it
// into a shadow topology for cross-node confirmation.
func (routeleakScenario) WitnessUpdate(seed any, f Finding) *bgp.Update {
	su := seed.(*bgp.Update)
	peerAS := su.Attrs.ASPath.FirstAS()
	origin := f.OriginAS
	attrs := su.Attrs.Clone()
	path := bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{peerAS}}}
	if origin != 0 && origin != peerAS {
		path[0].ASNs = append(path[0].ASNs, origin)
	}
	attrs.ASPath = path
	// Keep the seed's concrete communities — the validated acceptance may
	// have depended on them (concrete membership hits record no
	// constraint) — and add the witness community the way
	// HandleLeakConcolic materialized it.
	attrs.Communities = append([]uint32(nil), su.Attrs.Communities...)
	if c := uint32(f.Input[router.StandardLeakVars.Community]); c != 0 && !attrs.HasCommunity(c) {
		attrs.Communities = append(attrs.Communities, c)
	}
	return &bgp.Update{Attrs: attrs, NLRI: []netaddr.Prefix{f.Prefix}}
}

// leakNamedInput renders a leak-scenario assignment with the standard
// variable names (IDs follow DeclareLeakInputs declaration order).
func leakNamedInput(env sym.Env) map[string]uint64 {
	names := []string{
		router.StandardLeakVars.Addr,
		router.StandardLeakVars.Len,
		router.StandardLeakVars.OriginAS,
		router.StandardLeakVars.Community,
	}
	out := make(map[string]uint64, len(env))
	for id, v := range env {
		if id < len(names) {
			out[names[id]] = v
		} else {
			out[fmt.Sprintf("var%d", id)] = v
		}
	}
	return out
}
