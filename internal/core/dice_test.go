package core

import (
	"testing"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/netaddr"
	"dice/internal/router"
	"dice/internal/trace"
)

func smallTrace(tableSize, updates int) []trace.Record {
	cfg := trace.DefaultGenConfig()
	cfg.TableSize = tableSize
	cfg.UpdateCount = updates
	return trace.Generate(cfg)
}

// victimRecord installs a route with a known origin AS, giving the hijack
// oracle a deterministic victim.
func victimRecord(prefix string, origin uint16) trace.Record {
	return trace.Record{
		Kind:   trace.KindDump,
		Prefix: netaddr.MustParsePrefix(prefix),
		Attrs: bgp.Attrs{
			HasOrigin:  true,
			Origin:     bgp.OriginIGP,
			ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{InternetAS, origin}}},
			HasNextHop: true,
			NextHop:    netaddr.MustParseAddr("10.0.0.3"),
		},
	}
}

func TestFig2Converges(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Provider learned the customer's space.
	if f.Provider.RIB().Best(CustomerSpace) == nil {
		t.Fatal("provider missing customer route")
	}
	// Internet learned it through the provider with the full path.
	rt := f.Internet.RIB().Best(CustomerSpace)
	if rt == nil {
		t.Fatal("internet missing customer route")
	}
	if rt.Attrs.ASPath.String() != "65002 65001" {
		t.Fatalf("path at internet: %s", rt.Attrs.ASPath)
	}
}

func TestFig2LoadTable(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := smallTrace(1000, 0)
	n, err := f.LoadTable(recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1000 {
		t.Fatalf("loaded %d", n)
	}
	// Provider holds the table (plus the customer route).
	if got := f.Provider.RIB().Prefixes(); got < 990 {
		t.Fatalf("provider table size %d", got)
	}
}

func TestFig2ReplayUpdates(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := smallTrace(200, 100)
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	before := f.Provider.Counters().UpdatesProcessed
	n, err := f.ReplayUpdates(recs)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("replayed %d", n)
	}
	if got := f.Provider.Counters().UpdatesProcessed - before; got != 100 {
		t.Fatalf("provider processed %d updates", got)
	}
}

// TestDetectsRouteLeakWithBrokenFilter is the paper's §4.2 experiment in
// miniature: misconfigured customer filtering at the provider; DiCE must
// find inputs that hijack existing routes.
func TestDetectsRouteLeakWithBrokenFilter(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	// Load some Internet routes so there are victims to hijack, plus a
	// deterministic victim covering the filter hole's range.
	recs := smallTrace(300, 0)
	recs = append(recs, victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}

	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 3000}})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatalf("no hijack findings; %d paths, %d runs", len(res.Report.Paths), res.Report.Runs)
	}
	for _, fd := range res.Findings {
		if fd.Kind != "prefix-hijack" {
			t.Fatalf("unexpected finding kind %q", fd.Kind)
		}
		if fd.OriginAS == fd.VictimAS {
			t.Fatalf("non-hijack flagged: %+v", fd)
		}
		if CustomerSpace.Covers(fd.Prefix) {
			t.Fatalf("customer's own space flagged as hijack: %v", fd.Prefix)
		}
	}
	// Live provider must be untouched: its customer route is still there
	// and its RIB has no explored garbage beyond the loaded table.
	if f.Provider.RIB().Best(CustomerSpace) == nil {
		t.Fatal("live RIB corrupted by exploration")
	}
}

// TestCorrectFilterYieldsNoFindings: with proper customer filtering, the
// only acceptable announcements are inside customer space, so the oracle
// stays quiet.
func TestCorrectFilterYieldsNoFindings(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: CorrectCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(300, 0)); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 3000}})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.Findings {
		t.Errorf("false finding with correct filter: %v", fd)
	}
}

// TestAnycastFalsePositiveFiltered: hijackable-by-nature anycast prefixes
// must be suppressed once configured (§4.2).
func TestAnycastFalsePositiveFiltered(t *testing.T) {
	anycast := netaddr.MustParsePrefix("10.99.0.0/16")

	run := func(withAnycast bool) *Result {
		opts := Fig2Options{CustomerFilter: MissingCustomerFilter}
		if withAnycast {
			opts.Anycast = []netaddr.Prefix{anycast}
		}
		f, err := NewFig2(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Install a single victim route covering the anycast space, from
		// the Internet side.
		rec := trace.Record{
			Kind:   trace.KindDump,
			Prefix: anycast,
			Attrs:  smallTrace(1, 0)[0].Attrs,
		}
		if _, err := f.LoadTable([]trace.Record{rec}); err != nil {
			t.Fatal(err)
		}
		d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}})
		res, err := d.ExplorePeer(NodeCustomer)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	without := run(false)
	hitsAnycast := false
	for _, fd := range without.Findings {
		if anycast.Covers(fd.Prefix) {
			hitsAnycast = true
		}
	}
	if !hitsAnycast {
		t.Skip("exploration did not reach the anycast prefix in budget; nothing to compare")
	}
	with := run(true)
	for _, fd := range with.Findings {
		if anycast.Covers(fd.Prefix) {
			t.Fatalf("anycast prefix still flagged: %v", fd)
		}
	}
	if with.FalsePositivesFiltered == 0 {
		t.Fatal("filter counter did not record suppression")
	}
}

// TestIsolationInvariant: every message produced during exploration lands
// in the capture sink; the live network sees nothing.
func TestIsolationInvariant(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(100, 0)); err != nil {
		t.Fatal(err)
	}
	beforeStats := f.Net.Stats(NodeProvider, NodeInternet)

	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 500}})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapturedMessages == 0 {
		t.Fatal("exploration produced no messages — clones not exercising propagation")
	}
	afterStats := f.Net.Stats(NodeProvider, NodeInternet)
	if afterStats.Messages != beforeStats.Messages {
		t.Fatalf("exploration leaked %d messages onto the live network",
			afterStats.Messages-beforeStats.Messages)
	}
	if f.Net.Pending() != 0 {
		t.Fatal("exploration enqueued live deliveries")
	}
}

// TestMemoryAccounting: checkpoint pages shared with the live state, and
// clone overheads measured per run.
func TestMemoryAccounting(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(500, 0)); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{
		Engine:        concolic.Options{MaxRuns: 200},
		MeasureMemory: true,
	})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Memory
	if m.CheckpointPages == 0 {
		t.Fatal("checkpoint has no pages")
	}
	// Live router did not process anything during exploration here, so
	// the checkpoint should share ~everything with the live state.
	if m.CheckpointUniqueFraction > 0.01 {
		t.Fatalf("checkpoint unique fraction %v, want ~0 (idle live node)", m.CheckpointUniqueFraction)
	}
	if m.ClonesMeasured == 0 {
		t.Fatal("no clones measured")
	}
	// Clones insert at most a handful of routes into a 500-prefix table:
	// overhead must be a small fraction, far below a full copy.
	if m.CloneOverheadMean > 0.2 {
		t.Fatalf("mean clone overhead %v — sharing broken", m.CloneOverheadMean)
	}
	if m.CloneOverheadMax < m.CloneOverheadMean {
		t.Fatal("max < mean")
	}
}

func TestExplorePeerErrors(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{})
	if _, err := d.ExplorePeer("nonexistent"); err == nil {
		t.Fatal("unknown peer accepted")
	}
	// The internet peer has sent nothing NLRI-bearing to the provider...
	// actually it has (nothing). Customer has (its network). Use a fresh
	// customer-less check: internet observed no updates from provider?
	d2 := New(f.Customer, Options{})
	if _, err := d2.ExplorePeer(NodeInternet); err == nil {
		t.Fatal("peer with no observed updates accepted")
	}
}

// TestFindingsAreActionable: the finding must carry the witness input
// with the standard variable names (the operator-facing report).
func TestFindingsAreActionable(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadTable(smallTrace(200, 0)); err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Skip("no findings in budget")
	}
	fd := res.Findings[0]
	if _, ok := fd.Input[router.StandardVars.Addr]; !ok {
		t.Fatalf("finding input missing %s: %v", router.StandardVars.Addr, fd.Input)
	}
	if fd.String() == "" {
		t.Fatal("empty finding string")
	}
}

// TestExploreSnapshotMatchesLive: the §2.4 remote-exploration path — a
// node checkpoints, the checkpoint is restored elsewhere (capture-sink
// transport), and exploration over the restored state finds the same
// hijacks as exploring the live node.
func TestExploreSnapshotMatchesLive(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(200, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	seed := f.Provider.LastObserved(NodeCustomer)

	// Live exploration.
	live, err := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}}).ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}

	// Ship the checkpoint, restore, explore remotely.
	state := f.Provider.EncodeState()
	remote, err := ExploreSnapshot(NodeProvider, f.Provider.Config(), state, NodeCustomer, seed,
		Options{Engine: concolic.Options{MaxRuns: 2000}})
	if err != nil {
		t.Fatal(err)
	}

	if len(remote.Findings) != len(live.Findings) {
		t.Fatalf("remote found %d, live found %d", len(remote.Findings), len(live.Findings))
	}
	for i := range live.Findings {
		if live.Findings[i].VictimPrefix != remote.Findings[i].VictimPrefix {
			t.Fatalf("finding %d differs: %v vs %v", i, live.Findings[i], remote.Findings[i])
		}
	}
	// Live network untouched by the remote round (trivially true: the
	// restored router only has a capture sink).
	if f.Net.Pending() != 0 {
		t.Fatal("remote exploration leaked deliveries")
	}
}

// TestWitnessValidation: every reported finding must carry a validated
// witness (re-executed concretely through the instrumented handler).
func TestWitnessValidation(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(200, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	res, err := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}}).ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings to validate")
	}
	for _, fd := range res.Findings {
		if !fd.Validated {
			t.Fatalf("unvalidated finding reported: %v", fd)
		}
	}
}

// TestExploreOpenCoversAllFSMOutcomes: the future-work extension — OPEN
// exploration must enumerate the Established path plus every rejection
// class of the session FSM (version, hold time, identifier, peer AS).
func TestExploreOpenCoversAllFSMOutcomes(t *testing.T) {
	f, err := NewFig2(Fig2Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 500}})
	res, err := d.ExploreOpen(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths < 5 {
		t.Fatalf("expected >= 5 FSM paths, got %d", res.Paths)
	}
	wantSubcodes := map[uint8]bool{1: false, 2: false, 3: false, 6: false}
	established := false
	for _, out := range res.Outcomes {
		if out.Established {
			established = true
			continue
		}
		if _, ok := wantSubcodes[out.NotifySubcode]; ok {
			wantSubcodes[out.NotifySubcode] = true
		}
	}
	if !established {
		t.Error("Established outcome not explored")
	}
	for sub, found := range wantSubcodes {
		if !found {
			t.Errorf("OPEN error subcode %d not explored; outcomes: %+v", sub, res.Outcomes)
		}
	}
	// The live peering must be untouched.
	if f.Provider.Session(NodeCustomer).State() != bgp.StateEstablished {
		t.Fatal("live session disturbed by OPEN exploration")
	}
	if res.String() == "" {
		t.Fatal("empty report")
	}
}

// TestHijackSpreadTracked: a validated hijack finding reports which peers
// the provider would re-announce it to — the YouTube hijack only became
// an incident because PCCW spread it. With the default (accept-all)
// export policy toward the Internet, findings must spread there.
func TestHijackSpreadTracked(t *testing.T) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(100, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	res, err := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: 2000}}).ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	for _, fd := range res.Findings {
		spreads := false
		for _, p := range fd.SpreadTo {
			if p == NodeInternet {
				spreads = true
			}
		}
		if !spreads {
			t.Fatalf("finding does not spread to the internet peer: %+v", fd)
		}
	}
}

// TestExportFilterBlocksSpread: with an export filter that refuses
// customer-learned more-specifics toward the Internet, hijacks are still
// accepted locally but no longer spread — the defense PCCW lacked.
func TestExportFilterBlocksSpread(t *testing.T) {
	// Provider config with broken import but protective export.
	providerFilter := BrokenCustomerFilter + `
	filter no_specifics_out {
		if net.len > 22 then reject;
		accept;
	}`
	f, err := NewFig2(Fig2Options{CustomerFilter: providerFilter})
	if err != nil {
		t.Fatal(err)
	}
	// Rewire: the Fig2 provider template only attaches customer_in; build
	// a custom provider config instead.
	_ = f
	cfgSrc := `
		router id 10.0.0.2; local as 65002;
		` + BrokenCustomerFilter + `
		filter no_specifics_out {
			if net.len > 22 then reject;
			accept;
		}
		peer customer { remote 10.0.0.1 as 65001; import filter customer_in; }
		peer internet { remote 10.0.0.3 as 65003; export filter no_specifics_out; }`
	f2, err := newFig2WithProviderConfig(cfgSrc)
	if err != nil {
		t.Fatal(err)
	}
	recs := append(smallTrace(100, 0), victimRecord("10.6.0.0/16", 64999))
	if _, err := f2.LoadTable(recs); err != nil {
		t.Fatal(err)
	}
	res, err := New(f2.Provider, Options{Engine: concolic.Options{MaxRuns: 3000}}).ExplorePeer(NodeCustomer)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Findings) == 0 {
		t.Skip("no findings in budget")
	}
	for _, fd := range res.Findings {
		if fd.Prefix.Bits() > 22 {
			for _, p := range fd.SpreadTo {
				if p == NodeInternet {
					t.Fatalf("/%d hijack spread despite export filter: %+v", fd.Prefix.Bits(), fd)
				}
			}
		}
	}
}
