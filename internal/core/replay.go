package core

import (
	"fmt"

	"dice/internal/bgp"
	"dice/internal/trace"
)

// Trace replay turns one-off federated exploration runs into a
// repeatable regression suite: a recorded history (internal/trace
// format — a full-table dump plus a timed update stream) is fed into
// the live fabric through a node←peer ingress session before rounds
// run, so exploration seeds from the replayed history and the round's
// finding set can be diffed against a committed golden snapshot
// (internal/regress). Both backends replay identically — the
// in-process FederatedExperiment directly, the distributed coordinator
// by fanning the trace to every agent's deterministic local fabric.

// ReplayTrace feeds a recorded trace into the live fabric as the
// node←peer input stream: dump records bulk-load through the peer's
// session (draining the network periodically, like the Fig. 2 table
// load), update records are injected at their recorded offsets with the
// virtual clock advanced between them, and the fabric is converged at
// the end. It returns the number of records injected.
func (f *Fabric) ReplayTrace(node, peer string, records []trace.Record) (int, error) {
	sender := f.Routers[peer]
	if sender == nil {
		return 0, fmt.Errorf("replay: unknown ingress peer %q", peer)
	}
	sess := sender.Session(node)
	if sess == nil {
		return 0, fmt.Errorf("replay: no %s→%s session to replay through", peer, node)
	}
	if sess.State() != bgp.StateEstablished {
		return 0, fmt.Errorf("replay: %s→%s session not established", peer, node)
	}

	dump, updates := trace.Split(records)
	n := 0
	for _, rec := range dump {
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, fmt.Errorf("replay: dump record %d (%s): %w", n, rec.Prefix, err)
		}
		n++
		if n%1024 == 0 {
			f.Net.Run(0) // keep the delivery queue small during bulk load
		}
	}
	f.Net.Run(0)

	start := f.Net.Now()
	for _, rec := range updates {
		f.Net.RunUntil(start.Add(rec.At))
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err != nil {
			return n, fmt.Errorf("replay: update record %d (%s %s): %w", n, rec.Kind, rec.Prefix, err)
		}
		n++
	}
	f.Net.Run(0) // converge the tail
	return n, nil
}

// Replay feeds a recorded trace into the experiment's live fabric (see
// Fabric.ReplayTrace). Call it before Round: the replayed history
// becomes the state rounds checkpoint from and the observed seeds
// exploration starts at.
func (fe *FederatedExperiment) Replay(node, peer string, records []trace.Record) (int, error) {
	return fe.Fabric.ReplayTrace(node, peer, records)
}
