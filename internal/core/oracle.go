package core

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/config"
	"dice/internal/netaddr"
	"dice/internal/rib"
	"dice/internal/router"
	"dice/internal/solver"
	"dice/internal/sym"
)

// Finding is one potential fault detected by an oracle.
type Finding struct {
	Kind string // "prefix-hijack" or "route-leak"
	Peer string
	// Prefix is a concrete witness prefix the peer could announce and
	// have accepted.
	Prefix netaddr.Prefix
	// LeakRange describes the whole leaked region the path condition
	// admits ("DiCE clearly states which prefix ranges can be leaked",
	// §4.2) as an address interval and length bounds.
	LeakRange RangeDesc
	// OriginAS is the origin the exploratory route would install.
	OriginAS uint16
	// VictimAS is the legitimate origin being overridden.
	VictimAS uint16
	// VictimPrefix is the existing route whose traffic is diverted.
	VictimPrefix netaddr.Prefix
	// Seq is the exploration run that discovered the accepting path.
	Seq int
	// Input is the concrete witness assignment.
	Input map[string]uint64
	// Validated reports that the witness was confirmed by re-executing it
	// through the instrumented handler on a fresh clone.
	Validated bool
	// SpreadTo lists peers the validated witness would be re-announced
	// to: a hijack that spreads beyond the provider is Internet-affecting
	// (the YouTube incident required PCCW to propagate it).
	SpreadTo []string
	// Witness is the concrete announcement a federated round injected
	// for this finding (nil outside federated rounds, or when the
	// witness was dropped by dedup or the per-round cap).
	Witness *bgp.Update
	// MinimalWitness is the delta-debugged form of Witness: the smallest
	// announcement (AS-path length, community count, prefix specificity,
	// optional attributes) that still triggers the same cross-node
	// oracle with the same attribution when re-injected. Set only when
	// minimization ran and the witness triggered cross-node violations.
	MinimalWitness *bgp.Update
}

// RangeDesc is an over-approximated description of an input region.
type RangeDesc struct {
	AddrLo, AddrHi netaddr.Addr
	LenLo, LenHi   int
}

func (r RangeDesc) String() string {
	return fmt.Sprintf("[%s..%s]/{%d..%d}", r.AddrLo, r.AddrHi, r.LenLo, r.LenHi)
}

// String renders a finding the way an operator report would.
func (f Finding) String() string {
	switch f.Kind {
	case "prefix-hijack":
		return fmt.Sprintf("%s: peer %s can announce %s (origin AS%d), overriding %s (origin AS%d); leakable range %s",
			f.Kind, f.Peer, f.Prefix, f.OriginAS, f.VictimPrefix, f.VictimAS, f.LeakRange)
	case "withdraw-blackhole":
		return fmt.Sprintf("%s: peer %s can withdraw %s and blackhole it; loss spreads to %v",
			f.Kind, f.Peer, f.Prefix, f.SpreadTo)
	}
	return fmt.Sprintf("%s: peer %s can announce %s (origin AS%d); leakable range %s",
		f.Kind, f.Peer, f.Prefix, f.OriginAS, f.LeakRange)
}

// addrVarID / lenVarID are the variable IDs DeclareSymbolicInputs assigns
// (declaration order).
const (
	addrVarID = 0
	lenVarID  = 1
)

// DetectHijacks implements the §4.2 origin-misconfiguration oracle.
//
// For every explored path whose route was accepted, the path condition
// describes the *set* of announcements the peer could make down that code
// path. The oracle intersects that region with the checkpoint-time
// routing table: for each existing best route, it asks the constraint
// solver whether the accepted region contains an announcement that is
// equal to or more specific than the route's prefix — i.e. one that would
// override ("hijack") its traffic with a different origin AS. Prefixes in
// configured anycast space are hijackable by nature and filtered as false
// positives.
func DetectHijacks(cfg *config.Config, rep *concolic.Report, table rib.RouteTable) (findings []Finding, filtered int) {
	// Collect victims once: current best routes (the routes whose traffic
	// can be stolen).
	victims := table.Dump()

	seen := map[string]bool{}
	for pi := range rep.Paths {
		p := &rep.Paths[pi]
		out, ok := p.Output.(router.ExplorationOutcome)
		if !ok || !out.Accepted {
			continue
		}
		cs := p.Constraints()
		info, feasible := solver.Analyze(cs)
		if !feasible {
			continue
		}
		region := regionFrom(info)

		for _, v := range victims {
			if v.OriginAS() == out.OriginAS {
				continue // same origin: re-announcement, not a hijack
			}
			// Cheap pre-filter: the victim's address range must intersect
			// the region's address interval, and the region must admit a
			// length >= the victim's.
			vLo := uint64(uint32(v.Prefix.Addr()))
			vHi := uint64(uint32(v.Prefix.Addr() | ^netaddr.Mask(v.Prefix.Bits())))
			if vHi < uint64(uint32(region.AddrLo)) || vLo > uint64(uint32(region.AddrHi)) {
				continue
			}
			if region.LenHi < v.Prefix.Bits() {
				continue
			}

			// Exact check: path condition ∧ (announcement ⊆ victim).
			addrVar := sym.NewVar(addrVarID, router.StandardVars.Addr, 32)
			lenVar := sym.NewVar(lenVarID, router.StandardVars.Len, 8)
			contain := []sym.Expr{
				sym.NewCmp(sym.OpEq,
					sym.NewBin(sym.OpAnd, addrVar, sym.NewConst(uint64(uint32(netaddr.Mask(v.Prefix.Bits()))), 32)),
					sym.NewConst(uint64(uint32(v.Prefix.Addr())), 32)),
				sym.NewCmp(sym.OpGe, lenVar, sym.NewConst(uint64(v.Prefix.Bits()), 8)),
			}
			query := append(append([]sym.Expr(nil), cs...), contain...)
			env, res := solver.New(solver.Options{Hint: p.Env}).Solve(query)
			if res != solver.Sat {
				continue
			}
			witness := netaddr.PrefixFrom(netaddr.Addr(uint32(env[addrVarID])), int(env[lenVarID]))

			if cfg.IsAnycast(v.Prefix) || cfg.IsAnycast(witness) {
				filtered++
				continue
			}
			key := fmt.Sprintf("%s|%d|%d", v.Prefix, v.OriginAS(), out.OriginAS)
			if seen[key] {
				continue
			}
			seen[key] = true
			findings = append(findings, Finding{
				Kind:         "prefix-hijack",
				Peer:         out.Peer,
				Prefix:       witness,
				LeakRange:    region,
				OriginAS:     out.OriginAS,
				VictimAS:     v.OriginAS(),
				VictimPrefix: v.Prefix,
				Seq:          p.Seq,
				Input:        namedInput(env),
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		if c := findings[i].VictimPrefix.Compare(findings[j].VictimPrefix); c != 0 {
			return c < 0
		}
		return findings[i].Prefix.Compare(findings[j].Prefix) < 0
	})
	return findings, filtered
}

// regionFrom extracts the announcement region from analyzed variables.
func regionFrom(info map[int]solver.VarInfo) RangeDesc {
	r := RangeDesc{AddrHi: netaddr.Addr(0xffffffff), LenHi: 32}
	if ai, ok := info[addrVarID]; ok {
		lo := ai.Lo
		hi := ai.Hi
		// Tighten with known bits.
		lo |= ai.One
		hi &^= ai.Zero
		if lo <= hi {
			r.AddrLo, r.AddrHi = netaddr.Addr(uint32(lo)), netaddr.Addr(uint32(hi))
		} else {
			r.AddrLo, r.AddrHi = netaddr.Addr(uint32(ai.Lo)), netaddr.Addr(uint32(ai.Hi))
		}
	}
	if li, ok := info[lenVarID]; ok {
		r.LenLo, r.LenHi = int(li.Lo), int(li.Hi)
		if r.LenHi > 32 {
			r.LenHi = 32
		}
	}
	return r
}

// namedInput renders an input assignment with the standard variable names
// (IDs are assigned in declaration order by DeclareSymbolicInputs).
func namedInput(env map[int]uint64) map[string]uint64 {
	names := []string{
		router.StandardVars.Addr,
		router.StandardVars.Len,
		router.StandardVars.Origin,
		router.StandardVars.MED,
		router.StandardVars.LocalPref,
	}
	out := make(map[string]uint64, len(env))
	for id, v := range env {
		if id < len(names) {
			out[names[id]] = v
		} else {
			out[fmt.Sprintf("var%d", id)] = v
		}
	}
	return out
}

// AcceptedOutsideSpace is a helper oracle used by examples: it reports
// accepted explored paths whose region admits announcements not covered
// by any allowed space (a route-leak check for a known customer address
// plan). It queries the solver for a witness outside each allowed prefix.
func AcceptedOutsideSpace(rep *concolic.Report, allowed []netaddr.Prefix) []Finding {
	var findings []Finding
	seenRange := map[string]bool{}
	for pi := range rep.Paths {
		p := &rep.Paths[pi]
		out, ok := p.Output.(router.ExplorationOutcome)
		if !ok || !out.Accepted {
			continue
		}
		cs := p.Constraints()
		// Require the announcement to avoid every allowed space.
		addrVar := sym.NewVar(addrVarID, router.StandardVars.Addr, 32)
		query := append([]sym.Expr(nil), cs...)
		for _, a := range allowed {
			query = append(query, sym.NewCmp(sym.OpNe,
				sym.NewBin(sym.OpAnd, addrVar, sym.NewConst(uint64(uint32(netaddr.Mask(a.Bits()))), 32)),
				sym.NewConst(uint64(uint32(a.Addr())), 32)))
		}
		env, res := solver.New(solver.Options{Hint: p.Env}).Solve(query)
		if res != solver.Sat {
			continue
		}
		info, feasible := solver.Analyze(cs)
		if !feasible {
			continue
		}
		region := regionFrom(info)
		if seenRange[region.String()] {
			continue
		}
		seenRange[region.String()] = true
		witness := netaddr.PrefixFrom(netaddr.Addr(uint32(env[addrVarID])), int(env[lenVarID]))
		findings = append(findings, Finding{
			Kind:      "route-leak",
			Peer:      out.Peer,
			Prefix:    witness,
			LeakRange: region,
			OriginAS:  out.OriginAS,
			Seq:       p.Seq,
			Input:     namedInput(env),
		})
	}
	sort.Slice(findings, func(i, j int) bool {
		return findings[i].Prefix.Compare(findings[j].Prefix) < 0
	})
	return findings
}
