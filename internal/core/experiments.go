package core

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"dice/internal/bgp"
	"dice/internal/checkpoint"
	"dice/internal/concolic"
	"dice/internal/netaddr"
	"dice/internal/netsim"
	"dice/internal/stats"
	"dice/internal/trace"
)

// This file contains the runners that regenerate the paper's evaluation
// (§4.1 and §4.2) plus the two design-choice ablations from DESIGN.md.
// cmd/experiments and the root bench_test.go call these.

// Scale parameterizes experiment size. The paper runs at TableSize=319355
// on a 48-core machine; Scale lets the same experiments run at laptop
// scale while preserving the workload shape.
type Scale struct {
	TableSize   int // full-dump prefixes (paper: 319,355)
	UpdateCount int // incremental updates in the 15-min trace
	ExploreRuns int // concolic run budget per exploration round
	Seed        int64
}

// DefaultScale is a laptop-friendly configuration.
func DefaultScale() Scale {
	return Scale{TableSize: 20000, UpdateCount: 250, ExploreRuns: 2000, Seed: 1}
}

// genTrace builds the experiment trace at the given scale. Records inside
// the customer's own allocation are dropped: in the non-hijacked steady
// state the rest of the Internet does not originate routes inside a
// customer's space, and keeping them would make the control experiment
// (correct filter) flag legitimate customer announcements.
func genTrace(s Scale) []trace.Record {
	cfg := trace.DefaultGenConfig()
	cfg.TableSize = s.TableSize
	cfg.UpdateCount = s.UpdateCount
	cfg.Seed = s.Seed
	recs := trace.Generate(cfg)
	out := recs[:0]
	for _, r := range recs {
		if CustomerSpace.Overlaps(r.Prefix) {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Victims returns deterministic hijack victims inside the broken filter's
// leak region, including a YouTube-analogue /22 (the real incident's
// victim was a /22 out of which a /24 was blackholed).
func Victims() []trace.Record {
	mk := func(prefix string, origin uint16) trace.Record {
		return trace.Record{
			Kind:   trace.KindDump,
			Prefix: netaddr.MustParsePrefix(prefix),
			Attrs: bgp.Attrs{
				HasOrigin:  true,
				Origin:     bgp.OriginIGP,
				ASPath:     bgp.ASPath{{Type: bgp.ASSequence, ASNs: []uint16{InternetAS, origin}}},
				HasNextHop: true,
				NextHop:    netaddr.AddrFrom4(10, 0, 0, 3),
			},
		}
	}
	return []trace.Record{
		mk("10.153.112.0/22", 36561), // AS36561 is YouTube's real ASN
		mk("10.6.0.0/16", 64999),
		mk("10.200.0.0/16", 64801),
	}
}

// YouTubeVictim is the /22 analogue of the hijacked YouTube prefix.
var YouTubeVictim = netaddr.MustParsePrefix("10.153.112.0/22")

// --- E1: §4.1 memory overhead ------------------------------------------------

// E1Result is the memory experiment outcome (paper: checkpoint 3.45%
// unique pages; exploration clones +36.93% mean / 39% max).
type E1Result struct {
	TableSize       int
	CheckpointPages int
	CheckpointBytes int
	// UniqueFraction: fraction of checkpoint pages private to the
	// checkpoint after the live router processed the update trace.
	UniqueFraction float64
	// Clone overheads relative to the checkpoint.
	CloneOverheadMean float64
	CloneOverheadMax  float64
	ClonesMeasured    int
}

// RunE1Memory loads the full table, checkpoints, lets the live router
// process the 15-minute update replay (divergence), and measures page
// sharing; exploration clone overheads come from a measured round.
func RunE1Memory(s Scale) (*E1Result, error) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		return nil, err
	}
	recs := append(genTrace(s), Victims()...)
	if _, err := f.LoadTable(recs); err != nil {
		return nil, err
	}

	// Checkpoint before the update replay.
	store := checkpoint.NewStore(0)
	ckpt := store.TakeChunks("checkpoint", f.Provider.EncodeStateChunks())
	defer ckpt.Release()

	// The live router keeps processing the trace while exploration runs
	// over the (now frozen) checkpoint.
	_, updates := trace.Split(recs)
	if _, err := f.ReplayUpdates(updates); err != nil {
		return nil, err
	}
	live := store.TakeChunks("live", f.Provider.EncodeStateChunks())
	uniqueFrac := ckpt.UniqueFraction(live)
	live.Release()

	// Clone overheads from a measured exploration round.
	d := New(f.Provider, Options{
		Engine:        concolic.Options{MaxRuns: s.ExploreRuns},
		MeasureMemory: true,
	})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		return nil, err
	}
	return &E1Result{
		TableSize:         s.TableSize,
		CheckpointPages:   ckpt.Pages(),
		CheckpointBytes:   ckpt.Size(),
		UniqueFraction:    uniqueFrac,
		CloneOverheadMean: res.Memory.CloneOverheadMean,
		CloneOverheadMax:  res.Memory.CloneOverheadMax,
		ClonesMeasured:    res.Memory.ClonesMeasured,
	}, nil
}

// --- E2/E3: §4.1 CPU / throughput ----------------------------------------------

// ThroughputResult reports updates/second with and without concurrent
// exploration (paper E2: 13.9 vs 15.1 ⇒ 8% impact; E3: 0.272 vs 0.287,
// negligible).
type ThroughputResult struct {
	UpdatesPerSecWith    float64
	UpdatesPerSecWithout float64
	ImpactPercent        float64
	UpdatesProcessed     int
	ExplorationRounds    int
}

// throughputRun drives updates through the internet→provider session,
// optionally with continuous background exploration contending on the
// router's state lock (the paper pins the explorer and its checkpoints to
// a shared core; here they share the router's serialization point and the
// process's memory system).
func throughputRun(s Scale, preload bool, paced time.Duration, withExploration bool) (float64, int, int, error) {
	f, err := NewFig2(Fig2Options{CustomerFilter: ThroughputFilter})
	if err != nil {
		return 0, 0, 0, err
	}
	recs := append(Victims(), genTrace(s)...)
	dump, updates := trace.Split(recs)

	var driven []trace.Record
	if preload {
		if _, err := f.LoadTable(recs); err != nil {
			return 0, 0, 0, err
		}
		driven = updates
	} else {
		// Seed one observed update so exploration has a template, then
		// drive the bulk of the dump as the measured workload.
		if _, err := f.LoadTable(dump[:1]); err != nil {
			return 0, 0, 0, err
		}
		driven = dump[1:]
	}

	var lock sync.Mutex
	rounds := 0
	stop := make(chan struct{})
	done := make(chan struct{})
	if withExploration {
		// Like the paper: ONE checkpoint, then continuous exploration over
		// it for the whole measurement window. The checkpoint clone is the
		// only operation that touches the live router; exploration work
		// (COW clones, handler runs, solver queries) shares the process's
		// CPUs and memory system with the measured update path.
		d := New(f.Provider, Options{
			Engine: concolic.Options{
				MaxRuns: 1 << 30, // bounded by the cancel signal
				Cancel:  stop,
			},
			CloneLock: &lock,
		})
		go func() {
			defer close(done)
			if _, err := d.ExplorePeer(NodeCustomer); err != nil {
				return
			}
			rounds++
		}()
		// Give the round time to take its checkpoint before measuring.
		time.Sleep(20 * time.Millisecond)
	} else {
		close(done)
	}

	sess := f.Internet.Session(NodeProvider)
	// Warm up both modes identically and normalize the GC heap target so
	// the comparison isolates exploration's cost rather than allocator
	// pacing artifacts.
	warm := 200
	if warm > len(driven)/10 {
		warm = len(driven) / 10
	}
	for _, rec := range driven[:warm] {
		lock.Lock()
		if err := sess.SendUpdate(trace.ToUpdate(rec)); err == nil {
			f.Net.Run(0)
		}
		lock.Unlock()
	}
	driven = driven[warm:]
	runtime.GC()

	startWall := time.Now()
	n := 0
	for i, rec := range driven {
		if paced > 0 {
			due := startWall.Add(paced * time.Duration(i) / time.Duration(len(driven)))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		lock.Lock()
		err := sess.SendUpdate(trace.ToUpdate(rec))
		if err == nil {
			f.Net.Run(0)
		}
		lock.Unlock()
		if err != nil {
			close(stop)
			<-done
			return 0, 0, 0, err
		}
		n++
	}
	elapsed := time.Since(startWall)
	close(stop)
	<-done
	return float64(n) / elapsed.Seconds(), rounds, n, nil
}

// RunE2FullLoad measures UPDATE throughput while bulk-loading the routing
// table — the paper's "most stressful case". Each mode runs several times
// (interleaved) and the medians are compared, because sub-second loads
// are noisy.
func RunE2FullLoad(s Scale) (*ThroughputResult, error) {
	const reps = 5
	var withs, withouts stats.Summary
	var rounds, n int
	for i := 0; i < reps; i++ {
		w, r, nn, err := throughputRun(s, false, 0, true)
		if err != nil {
			return nil, err
		}
		withs.Observe(w)
		rounds += r
		n = nn
		wo, _, _, err := throughputRun(s, false, 0, false)
		if err != nil {
			return nil, err
		}
		withouts.Observe(wo)
	}
	with, without := withs.Median(), withouts.Median()
	return &ThroughputResult{
		UpdatesPerSecWith:    with,
		UpdatesPerSecWithout: without,
		ImpactPercent:        100 * (1 - with/without),
		UpdatesProcessed:     n,
		ExplorationRounds:    rounds,
	}, nil
}

// RunE3Steady measures throughput during a paced (real-time) replay of
// the incremental trace, compressed into the given wall-clock window —
// the paper's realistic scenario where the trace rate is the bottleneck.
func RunE3Steady(s Scale, window time.Duration) (*ThroughputResult, error) {
	with, rounds, n, err := throughputRun(s, true, window, true)
	if err != nil {
		return nil, err
	}
	without, _, _, err := throughputRun(s, true, window, false)
	if err != nil {
		return nil, err
	}
	return &ThroughputResult{
		UpdatesPerSecWith:    with,
		UpdatesPerSecWithout: without,
		ImpactPercent:        100 * (1 - with/without),
		UpdatesProcessed:     n,
		ExplorationRounds:    rounds,
	}, nil
}

// --- E4: §4.2 route-leak detection ----------------------------------------------

// E4Result is the detection experiment outcome.
type E4Result struct {
	Findings         []Finding
	FalsePositives   int // anycast suppressions
	Paths            int
	Runs             int
	Elapsed          time.Duration
	VictimsInstalled int
	YouTubeDetected  bool // the /22 analogue specifically
}

// RunE4RouteLeak replicates the prefix-hijack detection experiment:
// misconfigured customer filtering at the provider, exploration over
// customer announcements, oracle against the pre-exploration table.
func RunE4RouteLeak(s Scale, filterSrc string, anycast []netaddr.Prefix) (*E4Result, error) {
	f, err := NewFig2(Fig2Options{CustomerFilter: filterSrc, Anycast: anycast})
	if err != nil {
		return nil, err
	}
	vict := Victims()
	recs := append(genTrace(s), vict...)
	if _, err := f.LoadTable(recs); err != nil {
		return nil, err
	}
	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: s.ExploreRuns}})
	res, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		return nil, err
	}
	out := &E4Result{
		Findings:         res.Findings,
		FalsePositives:   res.FalsePositivesFiltered,
		Paths:            len(res.Report.Paths),
		Runs:             res.Report.Runs,
		Elapsed:          res.Elapsed,
		VictimsInstalled: len(vict),
	}
	for _, fd := range res.Findings {
		if fd.VictimPrefix == YouTubeVictim {
			out.YouTubeDetected = true
		}
	}
	return out, nil
}

// --- S1: cross-round exploration state --------------------------------------------

// S1RoundStats is one round's cost in the warm-state experiment.
type S1RoundStats struct {
	Scenario         string
	Round            int
	Runs             int
	NewPaths         int
	SolverQueries    int // searched + cache-answered
	CacheHits        int
	SkippedNegations int
}

// S1Result reports per-round exploration cost with shared cross-round
// state, for every registered scenario.
type S1Result struct {
	Rounds []S1RoundStats
}

// RunS1WarmState runs `rounds` consecutive online rounds per registered
// scenario on one DiCE instance with ReuseState, measuring how much work
// each round repeats. With an unchanged seed, warm rounds must skip all
// known paths and negations.
func RunS1WarmState(s Scale, rounds int) (*S1Result, error) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		return nil, err
	}
	recs := append(genTrace(s), Victims()...)
	if _, err := f.LoadTable(recs); err != nil {
		return nil, err
	}
	d := New(f.Provider, Options{
		Engine:     concolic.Options{MaxRuns: s.ExploreRuns},
		ReuseState: true,
	})
	out := &S1Result{}
	for _, name := range ScenarioNames() {
		for round := 1; round <= rounds; round++ {
			res, err := d.ExploreScenario(name, NodeCustomer)
			if err != nil {
				return nil, err
			}
			rep := res.Report
			out.Rounds = append(out.Rounds, S1RoundStats{
				Scenario:         name,
				Round:            round,
				Runs:             rep.Runs,
				NewPaths:         len(rep.Paths),
				SolverQueries:    rep.SolverCalls + rep.CacheHits,
				CacheHits:        rep.CacheHits,
				SkippedNegations: rep.SkippedNegations,
			})
		}
	}
	return out, nil
}

// --- A1: symbolic-marking ablation -----------------------------------------------

// A1Result compares field-granular symbolic marking (DiCE's choice) with
// marking raw message bytes symbolic (§3.2: raw marking "produce[s] a
// large variety of invalid messages that simply exercise the message
// parsing code").
type A1Result struct {
	FieldRuns        int
	FieldValidRatio  float64 // parseable generated messages
	FieldPolicyPaths int     // distinct outcomes reaching policy code
	RawRuns          int
	RawValidRatio    float64
	RawPolicyPaths   int
}

// RunA1SymbolicMarking runs both marking strategies over the same seed
// message and run budget.
func RunA1SymbolicMarking(s Scale) (*A1Result, error) {
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		return nil, err
	}
	if _, err := f.LoadTable(Victims()); err != nil {
		return nil, err
	}
	seed := f.Provider.LastObserved(NodeCustomer)
	res := &A1Result{FieldValidRatio: 1.0} // field marking is valid by construction

	d := New(f.Provider, Options{Engine: concolic.Options{MaxRuns: s.ExploreRuns}})
	fieldRes, err := d.ExplorePeer(NodeCustomer)
	if err != nil {
		return nil, err
	}
	res.FieldRuns = fieldRes.Report.Runs
	res.FieldPolicyPaths = len(fieldRes.Report.Paths)

	// Raw-bytes marking: the first rawVars wire bytes are symbolic.
	wire, err := bgp.Encode(seed)
	if err != nil {
		return nil, err
	}
	const rawVars = 12
	valid := 0
	total := 0
	policyPaths := map[string]bool{}
	handler := func(rc *concolic.RunContext) any {
		mut := append([]byte(nil), wire...)
		for i := 0; i < rawVars && i < len(mut); i++ {
			b := rc.Input(fmt.Sprintf("byte%d", i))
			mut[i] = byte(b.C)
			// The parser's byte comparisons, coarsely modeled: equality
			// against the observed byte is the branch the engine negates.
			rc.Branch(concolic.Eq(b, concolic.Concrete(uint64(wire[i]), 8)))
		}
		total++
		m, err := bgp.Decode(mut)
		if err != nil {
			return "parse-error"
		}
		u, ok := m.(*bgp.Update)
		if !ok || len(u.NLRI) == 0 {
			return "not-an-update"
		}
		valid++
		clone := f.Provider.Clone(netsim.NewCaptureSink())
		outc := clone.HandleUpdateConcrete(NodeCustomer, u)
		policyPaths[fmt.Sprintf("%v-%v", outc.Accepted, outc.Prefix)] = true
		return outc
	}
	eng := concolic.NewEngine(handler, concolic.Options{MaxRuns: s.ExploreRuns})
	for i := 0; i < rawVars && i < len(wire); i++ {
		eng.Var(fmt.Sprintf("byte%d", i), 8, uint64(wire[i]))
	}
	rawRep := eng.Explore()
	res.RawRuns = rawRep.Runs
	if total > 0 {
		res.RawValidRatio = float64(valid) / float64(total)
	}
	res.RawPolicyPaths = len(policyPaths)
	return res, nil
}

// --- A2: checkpoint-vs-replay ablation ---------------------------------------------

// A2Result compares the time to reach an exploration-ready state from a
// live checkpoint (DiCE) vs replaying the input history from the initial
// state (the approach §2.3 rejects as "prohibitively time-consuming").
type A2Result struct {
	HistoryLen     int
	CheckpointTime time.Duration // clone from live state
	ReplayTime     time.Duration // fresh topology + full history replay
	SpeedupFactor  float64
}

// RunA2CheckpointVsReplay measures both paths to a ready exploration
// substrate for the given history length.
func RunA2CheckpointVsReplay(historyLen int, seedVal int64) (*A2Result, error) {
	s := Scale{TableSize: historyLen, UpdateCount: 0, ExploreRuns: 1, Seed: seedVal}
	f, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		return nil, err
	}
	recs := genTrace(s)
	if _, err := f.LoadTable(recs); err != nil {
		return nil, err
	}

	// DiCE: clone the live router.
	start := time.Now()
	clone := f.Provider.Clone(netsim.NewCaptureSink())
	ckptTime := time.Since(start)
	if clone.RIB().Prefixes() != f.Provider.RIB().Prefixes() {
		return nil, fmt.Errorf("a2: clone lost state")
	}

	// Replay-from-initial-state: rebuild and replay the whole history.
	start = time.Now()
	f2, err := NewFig2(Fig2Options{CustomerFilter: BrokenCustomerFilter})
	if err != nil {
		return nil, err
	}
	if _, err := f2.LoadTable(recs); err != nil {
		return nil, err
	}
	replayTime := time.Since(start)

	out := &A2Result{
		HistoryLen:     historyLen,
		CheckpointTime: ckptTime,
		ReplayTime:     replayTime,
	}
	if ckptTime > 0 {
		out.SpeedupFactor = float64(replayTime) / float64(ckptTime)
	}
	return out, nil
}
