package core

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/router"
)

// OpenExploration is the result of concolically exploring a peering's
// OPEN-message handling — the paper's §3.2 future work ("the other state
// changing messages ... we leave them for future work") implemented.
type OpenExploration struct {
	Peer     string
	Paths    int
	Runs     int
	Outcomes []router.OpenOutcome // one per distinct FSM outcome
}

// String renders the outcome matrix.
func (o *OpenExploration) String() string {
	s := fmt.Sprintf("OPEN exploration for peer %s: %d paths in %d runs\n", o.Peer, o.Paths, o.Runs)
	for _, out := range o.Outcomes {
		if out.Established {
			s += "  outcome: session Established\n"
		} else {
			s += fmt.Sprintf("  outcome: rejected with NOTIFICATION code %d subcode %d\n",
				out.NotifyCode, out.NotifySubcode)
		}
	}
	return s
}

// ExploreOpen explores the live router's OPEN handling for one peer: a
// well-formed OPEN the peer would send seeds the symbolic fields, and
// predicate negation enumerates every acceptance/rejection path of the
// session FSM. Exploration uses throwaway sessions only; the live peering
// is untouched.
func (d *DiCE) ExploreOpen(peerName string) (*OpenExploration, error) {
	sess := d.live.Session(peerName)
	if sess == nil {
		return nil, fmt.Errorf("dice: unknown peer %q", peerName)
	}
	peerCfg := d.live.Config().FindPeer(peerName)
	if peerCfg == nil {
		return nil, fmt.Errorf("dice: peer %q not in config", peerName)
	}
	seed := &bgp.Open{
		Version:  4,
		AS:       peerCfg.AS,
		HoldTime: 90,
		RouterID: peerCfg.Addr,
	}
	handler := func(rc *concolic.RunContext) any {
		return d.live.HandleOpenConcolic(rc, peerName)
	}
	eng := concolic.NewEngine(handler, d.opts.Engine)
	router.DeclareOpenInputs(eng, seed)
	rep := eng.Explore()

	res := &OpenExploration{Peer: peerName, Paths: len(rep.Paths), Runs: rep.Runs}
	seen := map[string]bool{}
	for _, p := range rep.Paths {
		out, ok := p.Output.(router.OpenOutcome)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%v/%d/%d", out.Established, out.NotifyCode, out.NotifySubcode)
		if !seen[key] {
			seen[key] = true
			res.Outcomes = append(res.Outcomes, out)
		}
	}
	sort.Slice(res.Outcomes, func(i, j int) bool {
		a, b := res.Outcomes[i], res.Outcomes[j]
		if a.Established != b.Established {
			return a.Established
		}
		if a.NotifyCode != b.NotifyCode {
			return a.NotifyCode < b.NotifyCode
		}
		return a.NotifySubcode < b.NotifySubcode
	})
	return res, nil
}
