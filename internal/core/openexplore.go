package core

import (
	"fmt"
	"sort"

	"dice/internal/bgp"
	"dice/internal/concolic"
	"dice/internal/router"
)

// openScenario explores a peering's OPEN-message handling — the paper's
// §3.2 future work ("the other state changing messages ... we leave them
// for future work") implemented: a well-formed OPEN the peer would send
// seeds the symbolic fields, and predicate negation enumerates every
// acceptance/rejection path of the session FSM. Exploration uses clones
// and throwaway sessions only; the live peering is untouched.
type openScenario struct{}

func init() { RegisterScenario(openScenario{}) }

func (openScenario) Name() string { return ScenarioOpen }

func (openScenario) Description() string {
	return "OPEN-message session-FSM exploration (acceptance and every rejection class)"
}

func (openScenario) Seed(live *router.Router, peer string) (any, error) {
	if live.Session(peer) == nil {
		return nil, fmt.Errorf("dice: unknown peer %q", peer)
	}
	peerCfg := live.Config().FindPeer(peer)
	if peerCfg == nil {
		return nil, fmt.Errorf("dice: peer %q not in config", peer)
	}
	return &bgp.Open{
		Version:  4,
		AS:       peerCfg.AS,
		HoldTime: 90,
		RouterID: peerCfg.Addr,
	}, nil
}

func (openScenario) Declare(eng *concolic.Engine, seed any) error {
	router.DeclareOpenInputs(eng, seed.(*bgp.Open))
	return nil
}

func (openScenario) Execute(rc *concolic.RunContext, clone *router.Router, peer string, seed any) any {
	return clone.HandleOpenConcolic(rc, peer)
}

func (openScenario) Analyze(d *DiCE, round *Round, res *Result) {
	out := &OpenExploration{
		Peer:  round.Peer,
		Paths: len(res.Report.Paths),
		Runs:  res.Report.Runs,
	}
	seen := map[string]bool{}
	for _, p := range res.Report.Paths {
		oc, ok := p.Output.(router.OpenOutcome)
		if !ok {
			continue
		}
		key := fmt.Sprintf("%v/%d/%d", oc.Established, oc.NotifyCode, oc.NotifySubcode)
		if !seen[key] {
			seen[key] = true
			out.Outcomes = append(out.Outcomes, oc)
		}
	}
	sort.Slice(out.Outcomes, func(i, j int) bool {
		a, b := out.Outcomes[i], out.Outcomes[j]
		if a.Established != b.Established {
			return a.Established
		}
		if a.NotifyCode != b.NotifyCode {
			return a.NotifyCode < b.NotifyCode
		}
		return a.NotifySubcode < b.NotifySubcode
	})
	res.Details = out
}

// OpenExploration is the result of concolically exploring a peering's
// OPEN-message handling.
type OpenExploration struct {
	Peer     string
	Paths    int
	Runs     int
	Outcomes []router.OpenOutcome // one per distinct FSM outcome
}

// String renders the outcome matrix.
func (o *OpenExploration) String() string {
	s := fmt.Sprintf("OPEN exploration for peer %s: %d paths in %d runs\n", o.Peer, o.Paths, o.Runs)
	for _, out := range o.Outcomes {
		if out.Established {
			s += "  outcome: session Established\n"
		} else {
			s += fmt.Sprintf("  outcome: rejected with NOTIFICATION code %d subcode %d\n",
				out.NotifyCode, out.NotifySubcode)
		}
	}
	return s
}

// ExploreOpen explores the live router's OPEN handling for one peer
// (the "open" scenario through the generic round machinery).
func (d *DiCE) ExploreOpen(peerName string) (*OpenExploration, error) {
	res, err := d.ExploreScenario(ScenarioOpen, peerName)
	if err != nil {
		return nil, err
	}
	return res.Details.(*OpenExploration), nil
}
