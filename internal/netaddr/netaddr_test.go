package netaddr

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", AddrFrom4(192, 0, 2, 1), true},
		{"10.0.0.1", AddrFrom4(10, 0, 0, 1), true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"-1.0.0.1", 0, false},
		{"a.b.c.d", 0, false},
		{"01.2.3.4", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseAddr(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseAddr(%q) succeeded; want error", c.in)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := Addr(v)
		back, err := ParseAddr(a.String())
		return err == nil && back == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMask(t *testing.T) {
	cases := []struct {
		bits int
		want Addr
	}{
		{0, 0},
		{1, 0x80000000},
		{8, 0xff000000},
		{16, 0xffff0000},
		{24, 0xffffff00},
		{31, 0xfffffffe},
		{32, 0xffffffff},
		{-3, 0},
		{40, 0xffffffff},
	}
	for _, c := range cases {
		if got := Mask(c.bits); got != c.want {
			t.Errorf("Mask(%d) = %#x; want %#x", c.bits, uint32(got), uint32(c.want))
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("203.0.113.0/24")
	if p.Addr() != AddrFrom4(203, 0, 113, 0) || p.Bits() != 24 {
		t.Fatalf("bad parse: %v", p)
	}
	if p.String() != "203.0.113.0/24" {
		t.Fatalf("String = %q", p.String())
	}
	for _, bad := range []string{
		"203.0.113.0",      // no slash
		"203.0.113.0/33",   // bad length
		"203.0.113.0/-1",   // bad length
		"203.0.113.1/24",   // host bits set
		"999.0.113.0/24",   // bad addr
		"203.0.113.0/abc",  // junk length
		"/24",              // no addr
		"203.0.113.0/24/8", // trailing junk
	} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded; want error", bad)
		}
	}
}

func TestPrefixFromCanonicalizes(t *testing.T) {
	p := PrefixFrom(AddrFrom4(10, 1, 2, 3), 8)
	if p.Addr() != AddrFrom4(10, 0, 0, 0) {
		t.Fatalf("host bits not cleared: %v", p)
	}
	if got := PrefixFrom(0xffffffff, 99); got.Bits() != 32 {
		t.Fatalf("bits not clamped: %d", got.Bits())
	}
	if got := PrefixFrom(0xffffffff, -5); got.Bits() != 0 || got.Addr() != 0 {
		t.Fatalf("negative bits not clamped: %v", got)
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/8")
	if !p.Contains(MustParseAddr("10.255.0.1")) {
		t.Error("10/8 should contain 10.255.0.1")
	}
	if p.Contains(MustParseAddr("11.0.0.1")) {
		t.Error("10/8 should not contain 11.0.0.1")
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(MustParseAddr("1.2.3.4")) {
		t.Error("default route should contain everything")
	}
	host := MustParsePrefix("192.0.2.1/32")
	if !host.Contains(MustParseAddr("192.0.2.1")) || host.Contains(MustParseAddr("192.0.2.2")) {
		t.Error("host route containment wrong")
	}
}

func TestCoversOverlaps(t *testing.T) {
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	p24 := MustParsePrefix("10.1.2.0/24")
	other := MustParsePrefix("192.168.0.0/16")

	if !p8.Covers(p16) || !p8.Covers(p24) || !p16.Covers(p24) {
		t.Error("expected nesting covers")
	}
	if p16.Covers(p8) {
		t.Error("/16 must not cover /8")
	}
	if !p8.Covers(p8) {
		t.Error("prefix must cover itself")
	}
	if p8.Covers(other) || p8.Overlaps(other) {
		t.Error("disjoint prefixes must not cover/overlap")
	}
	if !p24.Overlaps(p8) || !p8.Overlaps(p24) {
		t.Error("overlap must be symmetric for nested prefixes")
	}
}

func TestCompare(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.0.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if a.Compare(b) != -1 || b.Compare(a) != 1 {
		t.Error("shorter mask should sort first at same addr")
	}
	if a.Compare(c) != -1 || c.Compare(a) != 1 {
		t.Error("lower addr should sort first")
	}
	if a.Compare(a) != 0 {
		t.Error("self compare should be 0")
	}
}

func TestBit(t *testing.T) {
	p := MustParsePrefix("128.0.0.0/1")
	if p.Bit(0) != 1 {
		t.Error("msb of 128.0.0.0 should be 1")
	}
	q := MustParsePrefix("64.0.0.0/2")
	if q.Bit(0) != 0 || q.Bit(1) != 1 {
		t.Error("bits of 64.0.0.0 wrong")
	}
}

func TestPrefixStringRoundTrip(t *testing.T) {
	f := func(v uint32, bits uint8) bool {
		p := PrefixFrom(Addr(v), int(bits%33))
		back, err := ParsePrefix(p.String())
		return err == nil && back == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Covers is a partial order embedding — p covers q iff every
// sampled address of q is contained in p (checked on the corners).
func TestCoversConsistentWithContains(t *testing.T) {
	f := func(v uint32, b1, b2 uint8) bool {
		p := PrefixFrom(Addr(v), int(b1%33))
		q := PrefixFrom(Addr(v), int(b2%33))
		if p.Covers(q) {
			lo := q.Addr()
			hi := q.Addr() | ^Mask(q.Bits())
			return p.Contains(lo) && p.Contains(hi)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkParsePrefix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ParsePrefix("203.0.113.0/24"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContains(b *testing.B) {
	p := MustParsePrefix("10.0.0.0/8")
	a := MustParseAddr("10.20.30.40")
	for i := 0; i < b.N; i++ {
		if !p.Contains(a) {
			b.Fatal("wrong")
		}
	}
}
