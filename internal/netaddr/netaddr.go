// Package netaddr provides IPv4 address and prefix types used throughout
// the BGP substrate. Addresses are represented as host-order uint32 values
// so that prefix containment, masking and trie keying are cheap bit
// operations; everything is a value type and safe to copy.
//
// The package is deliberately self-contained (no dependency on net or
// net/netip) so the concolic engine can reason about the exact arithmetic
// the router performs on addresses.
package netaddr

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order.
type Addr uint32

// AddrFrom4 assembles an Addr from four dotted-quad octets.
func AddrFrom4(a, b, c, d byte) Addr {
	return Addr(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.1".
func ParseAddr(s string) (Addr, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
	}
	var v uint32
	for _, p := range parts {
		if p == "" || len(p) > 3 {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		n, err := strconv.Atoi(p)
		if err != nil || n < 0 || n > 255 {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		// Reject leading zeros ("01") to match net.ParseIP strictness.
		if len(p) > 1 && p[0] == '0' {
			return 0, fmt.Errorf("netaddr: invalid IPv4 address %q", s)
		}
		v = v<<8 | uint32(n)
	}
	return Addr(v), nil
}

// MustParseAddr is ParseAddr that panics on error; for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Octets returns the four dotted-quad octets of a.
func (a Addr) Octets() (byte, byte, byte, byte) {
	return byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)
}

// String renders a in dotted-quad form.
func (a Addr) String() string {
	b0, b1, b2, b3 := a.Octets()
	return fmt.Sprintf("%d.%d.%d.%d", b0, b1, b2, b3)
}

// Mask returns the network mask with the given prefix length (0..32).
func Mask(length int) Addr {
	if length <= 0 {
		return 0
	}
	if length >= 32 {
		return 0xffffffff
	}
	return Addr(^uint32(0) << (32 - uint(length)))
}

// Prefix is an IPv4 CIDR prefix: a network address plus a mask length.
// The zero Prefix is 0.0.0.0/0 (the default route).
type Prefix struct {
	addr Addr
	bits uint8
}

// ErrInvalidPrefix reports a malformed or non-canonical prefix.
var ErrInvalidPrefix = errors.New("netaddr: invalid prefix")

// PrefixFrom returns the prefix addr/bits with host bits zeroed
// (canonical form). bits outside [0,32] are clamped.
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{addr: addr & Mask(bits), bits: uint8(bits)}
}

// ParsePrefix parses a CIDR string such as "203.0.113.0/24". Host bits
// set beyond the mask are rejected (the prefix must be canonical).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("%w: %q (missing '/')", ErrInvalidPrefix, s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, fmt.Errorf("%w: %q: %v", ErrInvalidPrefix, s, err)
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("%w: %q (bad length)", ErrInvalidPrefix, s)
	}
	if addr&^Mask(bits) != 0 {
		return Prefix{}, fmt.Errorf("%w: %q (host bits set)", ErrInvalidPrefix, s)
	}
	return Prefix{addr: addr, bits: uint8(bits)}, nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Addr returns the network address of p.
func (p Prefix) Addr() Addr { return p.addr }

// Bits returns the mask length of p.
func (p Prefix) Bits() int { return int(p.bits) }

// String renders p in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", p.addr, p.bits)
}

// Contains reports whether address a is inside prefix p.
func (p Prefix) Contains(a Addr) bool {
	return a&Mask(int(p.bits)) == p.addr
}

// Covers reports whether p covers (is equal to or less specific than) q:
// every address in q is also in p.
func (p Prefix) Covers(q Prefix) bool {
	return p.bits <= q.bits && q.addr&Mask(int(p.bits)) == p.addr
}

// Overlaps reports whether p and q share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.Covers(q) || q.Covers(p)
}

// Compare orders prefixes first by address, then by mask length.
// It returns -1, 0 or +1.
func (p Prefix) Compare(q Prefix) int {
	switch {
	case p.addr < q.addr:
		return -1
	case p.addr > q.addr:
		return 1
	case p.bits < q.bits:
		return -1
	case p.bits > q.bits:
		return 1
	}
	return 0
}

// Bit returns the i-th most significant bit (0-indexed) of the network
// address, used for radix-trie descent. i must be in [0,32).
func (p Prefix) Bit(i int) int {
	return int(p.addr>>(31-uint(i))) & 1
}

// IsValidLen reports whether bits is a legal IPv4 prefix length.
func IsValidLen(bits int) bool { return bits >= 0 && bits <= 32 }
