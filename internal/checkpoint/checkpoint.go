// Package checkpoint provides fork()-style copy-on-write snapshots of
// process state with page-granular accounting.
//
// The paper implements checkpointing "by simply using the fork system
// call", which gives (a) cheap creation of many clones and (b) a small
// memory footprint, because clones share all untouched pages with the
// parent. This package reproduces both properties for in-process Go state:
// a snapshot ingests the node's serialized state, splits it into pages and
// stores them content-addressed with reference counts. Pages whose content
// is unchanged between two snapshots are physically shared — exactly the
// set of pages fork's COW would share — so the §4.1 unique-page and
// clone-overhead measurements are computed from real structural sharing,
// not estimates.
package checkpoint

import (
	"crypto/sha256"
	"fmt"
	"sync"
	"time"
)

// DefaultPageSize matches the 4 KiB pages of the paper's Linux testbed.
const DefaultPageSize = 4096

type pageKey [sha256.Size]byte

type page struct {
	data []byte
	refs int
}

// Store is a deduplicating, reference-counted page store shared by all
// snapshots of a node. It is safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	pageSize int
	pages    map[pageKey]*page

	// lifetime counters
	ingested uint64 // pages ingested across all snapshots
	shared   uint64 // of those, pages that already existed (COW hits)
}

// NewStore creates a page store. pageSize <= 0 selects DefaultPageSize.
func NewStore(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Store{pageSize: pageSize, pages: make(map[pageKey]*page)}
}

// PageSize returns the store's page size in bytes.
func (st *Store) PageSize() int { return st.pageSize }

// Snapshot is an immutable checkpoint of a node's state: an ordered list
// of page references plus the exact byte length.
type Snapshot struct {
	store *Store
	keys  []pageKey
	size  int
	when  time.Time
	label string

	releaseOnce sync.Once
}

// Take ingests state into the store and returns its snapshot. Pages whose
// content already exists in the store (from the parent or an earlier
// snapshot) are shared rather than copied.
func (st *Store) Take(label string, state []byte) *Snapshot {
	return st.TakeChunks(label, [][]byte{state})
}

// TakeChunks ingests state presented as independently-paged chunks. Each
// chunk starts on a fresh page, so a mutation inside one chunk leaves the
// pages of every other chunk byte-identical — modelling a heap where
// objects live at stable addresses, which is what makes fork()'s COW
// sharing effective. Callers serialize each stable region (e.g. a RIB
// address-range bucket) as its own chunk.
func (st *Store) TakeChunks(label string, chunks [][]byte) *Snapshot {
	st.mu.Lock()
	defer st.mu.Unlock()

	total := 0
	for _, c := range chunks {
		total += len(c)
	}
	snap := &Snapshot{
		store: st,
		keys:  make([]pageKey, 0, total/st.pageSize+len(chunks)),
		size:  total,
		when:  time.Now(),
		label: label,
	}
	for _, state := range chunks {
		for off := 0; off < len(state); off += st.pageSize {
			end := off + st.pageSize
			if end > len(state) {
				end = len(state)
			}
			chunk := state[off:end]
			key := sha256.Sum256(chunk)
			st.ingested++
			if p, ok := st.pages[key]; ok {
				p.refs++
				st.shared++
			} else {
				cp := make([]byte, len(chunk))
				copy(cp, chunk)
				st.pages[key] = &page{data: cp, refs: 1}
			}
			snap.keys = append(snap.keys, key)
		}
	}
	return snap
}

// Bytes reassembles the checkpointed state.
func (s *Snapshot) Bytes() []byte {
	st := s.store
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]byte, 0, s.size)
	for _, k := range s.keys {
		p, ok := st.pages[k]
		if !ok {
			panic(fmt.Sprintf("checkpoint: snapshot %q references evicted page", s.label))
		}
		out = append(out, p.data...)
	}
	return out[:s.size]
}

// Release drops the snapshot's page references; pages reaching zero
// references are evicted. Safe to call more than once.
func (s *Snapshot) Release() {
	s.releaseOnce.Do(func() {
		st := s.store
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, k := range s.keys {
			if p, ok := st.pages[k]; ok {
				p.refs--
				if p.refs <= 0 {
					delete(st.pages, k)
				}
			}
		}
	})
}

// Pages returns the number of pages in the snapshot.
func (s *Snapshot) Pages() int { return len(s.keys) }

// Size returns the logical byte size of the snapshot.
func (s *Snapshot) Size() int { return s.size }

// Label returns the label given at Take time.
func (s *Snapshot) Label() string { return s.label }

// When returns the creation time.
func (s *Snapshot) When() time.Time { return s.when }

// SharedPages counts pages of s that are physically shared with o
// (identical content at any position). This is the set fork's COW would
// leave shared between the two processes.
func (s *Snapshot) SharedPages(o *Snapshot) int {
	other := make(map[pageKey]int, len(o.keys))
	for _, k := range o.keys {
		other[k]++
	}
	shared := 0
	for _, k := range s.keys {
		if other[k] > 0 {
			other[k]--
			shared++
		}
	}
	return shared
}

// UniquePages counts pages of s not shared with o — the pages the
// checkpoint privately owns (the paper's "unique memory pages" metric).
func (s *Snapshot) UniquePages(o *Snapshot) int {
	return len(s.keys) - s.SharedPages(o)
}

// UniqueFraction is UniquePages over total pages of s, in [0,1].
func (s *Snapshot) UniqueFraction(o *Snapshot) float64 {
	if len(s.keys) == 0 {
		return 0
	}
	return float64(s.UniquePages(o)) / float64(len(s.keys))
}

// OverheadFraction reports how many additional pages s consumes relative
// to base: unique(s, base) / pages(base). This is the paper's
// "clones consume on average 36.93% pages more" metric.
func (s *Snapshot) OverheadFraction(base *Snapshot) float64 {
	if base.Pages() == 0 {
		return 0
	}
	return float64(s.UniquePages(base)) / float64(base.Pages())
}

// StoreStats reports store-wide accounting.
type StoreStats struct {
	ResidentPages int    // distinct pages currently stored
	ResidentBytes int    // bytes physically stored
	Ingested      uint64 // pages ingested over the store's lifetime
	SharedHits    uint64 // ingested pages that were deduplicated
}

// Stats returns current store accounting.
func (st *Store) Stats() StoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	var bytes int
	for _, p := range st.pages {
		bytes += len(p.data)
	}
	return StoreStats{
		ResidentPages: len(st.pages),
		ResidentBytes: bytes,
		Ingested:      st.ingested,
		SharedHits:    st.shared,
	}
}

// Checkpointable is implemented by nodes that can serialize their full
// state for checkpointing and be reconstructed from it. The router
// implements this; DiCE uses it to take checkpoints and spawn clones.
type Checkpointable interface {
	// EncodeState serializes the node's complete mutable state.
	EncodeState() []byte
}

// ChunkedCheckpointable is implemented by nodes that can present their
// state as stable, independently-mutating regions (see TakeChunks);
// Manager prefers it when available because it yields realistic COW
// sharing.
type ChunkedCheckpointable interface {
	// EncodeStateChunks serializes the node's state as stable regions.
	EncodeStateChunks() [][]byte
}

// Manager couples a store with a node, numbering checkpoints like fork
// would number child processes.
type Manager struct {
	store *Store
	next  int
	mu    sync.Mutex
}

// NewManager creates a Manager over a fresh store.
func NewManager(pageSize int) *Manager {
	return &Manager{store: NewStore(pageSize)}
}

// Store exposes the underlying page store.
func (m *Manager) Store() *Store { return m.store }

// Checkpoint snapshots the node's current state, preferring the chunked
// encoding when the node provides one.
func (m *Manager) Checkpoint(node Checkpointable) *Snapshot {
	m.mu.Lock()
	id := m.next
	m.next++
	m.mu.Unlock()
	label := fmt.Sprintf("ckpt-%d", id)
	if cn, ok := node.(ChunkedCheckpointable); ok {
		return m.store.TakeChunks(label, cn.EncodeStateChunks())
	}
	return m.store.Take(label, node.EncodeState())
}
