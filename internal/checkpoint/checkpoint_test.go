package checkpoint

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	st := NewStore(64)
	data := []byte("hello checkpoint world, this is state that spans multiple pages for sure")
	s := st.Take("a", data)
	if got := s.Bytes(); !bytes.Equal(got, data) {
		t.Fatalf("round trip mismatch: %q", got)
	}
	if s.Size() != len(data) {
		t.Fatalf("size = %d, want %d", s.Size(), len(data))
	}
	if s.Label() != "a" {
		t.Fatalf("label = %q", s.Label())
	}
}

func TestEmptyState(t *testing.T) {
	st := NewStore(64)
	s := st.Take("empty", nil)
	if s.Pages() != 0 || len(s.Bytes()) != 0 {
		t.Fatal("empty snapshot should have no pages")
	}
	if s.UniqueFraction(s) != 0 {
		t.Fatal("unique fraction of empty snapshot should be 0")
	}
}

func TestExactPageBoundary(t *testing.T) {
	st := NewStore(16)
	data := make([]byte, 48) // exactly 3 pages
	for i := range data {
		data[i] = byte(i)
	}
	s := st.Take("b", data)
	if s.Pages() != 3 {
		t.Fatalf("pages = %d, want 3", s.Pages())
	}
	if !bytes.Equal(s.Bytes(), data) {
		t.Fatal("round trip mismatch")
	}
}

func TestSharingBetweenIdenticalSnapshots(t *testing.T) {
	st := NewStore(16)
	data := make([]byte, 160)
	a := st.Take("a", data)
	b := st.Take("b", data)
	if got := a.SharedPages(b); got != 10 {
		t.Fatalf("shared = %d, want 10", got)
	}
	if a.UniquePages(b) != 0 {
		t.Fatal("identical snapshots must share everything")
	}
	// The store must hold the pages only once. All-zero pages of the same
	// content collapse into a single resident page.
	if stats := st.Stats(); stats.ResidentPages != 1 {
		t.Fatalf("resident pages = %d, want 1 (all pages identical)", stats.ResidentPages)
	}
}

func TestPartialDivergence(t *testing.T) {
	st := NewStore(16)
	base := make([]byte, 160)
	for i := range base {
		base[i] = byte(i) // distinct pages
	}
	a := st.Take("parent", base)

	// The clone dirties 2 of 10 pages (like exploration touching state).
	mod := make([]byte, len(base))
	copy(mod, base)
	mod[0] ^= 0xff  // page 0
	mod[40] ^= 0xff // page 2
	b := st.Take("clone", mod)

	if got := b.UniquePages(a); got != 2 {
		t.Fatalf("unique = %d, want 2", got)
	}
	if got := b.SharedPages(a); got != 8 {
		t.Fatalf("shared = %d, want 8", got)
	}
	if f := b.UniqueFraction(a); f != 0.2 {
		t.Fatalf("unique fraction = %v, want 0.2", f)
	}
	if f := b.OverheadFraction(a); f != 0.2 {
		t.Fatalf("overhead fraction = %v, want 0.2", f)
	}
}

func TestReleaseEvictsPages(t *testing.T) {
	st := NewStore(16)
	uniq := func(tag byte, n int) []byte {
		d := make([]byte, n)
		for i := range d {
			d[i] = tag ^ byte(i)
		}
		return d
	}
	a := st.Take("a", uniq(1, 64))
	b := st.Take("b", uniq(2, 64))
	before := st.Stats().ResidentPages
	a.Release()
	after := st.Stats().ResidentPages
	if after >= before {
		t.Fatalf("release did not evict pages: %d -> %d", before, after)
	}
	// b must still be readable.
	if len(b.Bytes()) != 64 {
		t.Fatal("surviving snapshot corrupted by release")
	}
	// Double release is safe.
	a.Release()
}

func TestReleaseKeepsSharedPages(t *testing.T) {
	st := NewStore(16)
	data := make([]byte, 64)
	for i := range data {
		data[i] = byte(i)
	}
	a := st.Take("a", data)
	b := st.Take("b", data)
	a.Release()
	if !bytes.Equal(b.Bytes(), data) {
		t.Fatal("shared pages evicted while still referenced")
	}
	b.Release()
	if st.Stats().ResidentPages != 0 {
		t.Fatal("store should be empty after all releases")
	}
}

func TestStoreStatsSharing(t *testing.T) {
	st := NewStore(16)
	data := make([]byte, 160)
	for i := range data {
		data[i] = byte(i)
	}
	st.Take("a", data)
	st.Take("b", data)
	stats := st.Stats()
	if stats.Ingested != 20 {
		t.Fatalf("ingested = %d, want 20", stats.Ingested)
	}
	if stats.SharedHits != 10 {
		t.Fatalf("shared hits = %d, want 10", stats.SharedHits)
	}
}

func TestManyClonesSmallFootprint(t *testing.T) {
	// The fork property the paper relies on: "create a large number of
	// checkpoints with a small memory footprint".
	st := NewStore(64)
	base := make([]byte, 64*100) // 100 pages
	for i := range base {
		base[i] = byte(i * 7)
	}
	parent := st.Take("parent", base)
	baseline := st.Stats().ResidentBytes

	clones := make([]*Snapshot, 50)
	for i := range clones {
		mod := make([]byte, len(base))
		copy(mod, base)
		mod[i*64] ^= 0xff // each clone dirties exactly one distinct page
		clones[i] = st.Take(fmt.Sprintf("clone-%d", i), mod)
	}
	grown := st.Stats().ResidentBytes - baseline
	// 50 clones x 1 private page each = 50 pages, not 50 x 100.
	if grown > 51*64 {
		t.Fatalf("store grew %d bytes; COW sharing broken", grown)
	}
	for _, c := range clones {
		if c.UniquePages(parent) != 1 {
			t.Fatalf("clone unique pages = %d, want 1", c.UniquePages(parent))
		}
	}
}

func TestDefaultPageSize(t *testing.T) {
	st := NewStore(0)
	if st.PageSize() != DefaultPageSize {
		t.Fatalf("page size = %d", st.PageSize())
	}
}

type fakeNode struct{ state []byte }

func (f *fakeNode) EncodeState() []byte { return f.state }

func TestManagerCheckpointNumbers(t *testing.T) {
	m := NewManager(16)
	n := &fakeNode{state: []byte("some state bytes here")}
	a := m.Checkpoint(n)
	b := m.Checkpoint(n)
	if a.Label() == b.Label() {
		t.Fatal("checkpoints must get distinct labels")
	}
	if a.SharedPages(b) != a.Pages() {
		t.Fatal("unchanged state should share all pages")
	}
}

// Property: round trip through the store is lossless for arbitrary state.
func TestRoundTripProperty(t *testing.T) {
	st := NewStore(32)
	f := func(data []byte) bool {
		s := st.Take("p", data)
		ok := bytes.Equal(s.Bytes(), data)
		s.Release()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shared + unique always equals total pages, and sharing is
// bounded by the smaller snapshot.
func TestSharingAccountingProperty(t *testing.T) {
	st := NewStore(8)
	f := func(a, b []byte) bool {
		sa := st.Take("a", a)
		sb := st.Take("b", b)
		defer sa.Release()
		defer sb.Release()
		sh := sa.SharedPages(sb)
		if sh+sa.UniquePages(sb) != sa.Pages() {
			return false
		}
		if sh > sb.Pages() {
			return false
		}
		// Symmetry of the shared count.
		return sh == sb.SharedPages(sa)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkTakeSnapshot64KB(b *testing.B) {
	st := NewStore(DefaultPageSize)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(i)
	}
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := st.Take("bench", data)
		s.Release()
	}
}

func BenchmarkCloneAfterSmallDirty(b *testing.B) {
	st := NewStore(DefaultPageSize)
	data := make([]byte, 256<<10)
	for i := range data {
		data[i] = byte(i * 13)
	}
	parent := st.Take("parent", data)
	defer parent.Release()
	mod := make([]byte, len(data))
	copy(mod, data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mod[i%len(mod)] ^= 0xff
		s := st.Take("clone", mod)
		s.Release()
		mod[i%len(mod)] ^= 0xff
	}
}
