package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// A makes an Attr — shorthand for call sites.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// Tracer records completed spans — (track, name, start, duration,
// attrs) — and exports them as Chrome trace_event JSON for flame-chart
// inspection (chrome://tracing, Perfetto, speedscope). Tracks map to
// trace threads: the coordinator gets one, each node gets its own, so a
// federated round renders as parallel per-node lanes under the round
// span. A nil *Tracer is a safe no-op; tracing is meant for one-shot
// round inspection (`dice -trace-out`), not always-on collection, so
// spans accumulate unbounded until written.
type Tracer struct {
	mu    sync.Mutex
	spans []spanRec
}

type spanRec struct {
	track string
	name  string
	start time.Time
	dur   time.Duration
	attrs []Attr
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer { return &Tracer{} }

// Span is one in-flight measurement started by Tracer.Start. A nil
// *Span (from a nil tracer) is a safe no-op.
type Span struct {
	t     *Tracer
	track string
	name  string
	start time.Time
	attrs []Attr
}

// Start opens a span on the given track. End records it.
func (t *Tracer) Start(track, name string, attrs ...Attr) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, track: track, name: name, start: time.Now(), attrs: attrs}
}

// End records the span with its elapsed duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.Add(s.track, s.name, s.start, time.Since(s.start), s.attrs...)
}

// Add records an already-measured span — the hook for synthesizing
// coarse spans from durations reported by another process or backend.
func (t *Tracer) Add(track, name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if t == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, spanRec{track: track, name: name, start: start, dur: dur, attrs: attrs})
	t.mu.Unlock()
}

// Len returns the number of recorded spans (0 on nil).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// chromeEvent is one trace_event entry. Complete spans use ph "X" with
// microsecond ts/dur; track names ride on ph "M" thread_name metadata.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur,omitempty"`
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every recorded span as Chrome trace_event
// JSON. Timestamps are microseconds relative to the earliest span so
// viewers open at t=0; tracks become threads named via metadata events,
// numbered in sorted track order for determinism.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	spans := append([]spanRec(nil), t.spans...)
	t.mu.Unlock()

	tracks := make(map[string]int)
	var trackNames []string
	for _, s := range spans {
		if _, ok := tracks[s.track]; !ok {
			tracks[s.track] = 0
			trackNames = append(trackNames, s.track)
		}
	}
	sort.Strings(trackNames)
	for i, name := range trackNames {
		tracks[name] = i + 1
	}

	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.start.Before(epoch) {
			epoch = s.start
		}
	}

	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, name := range trackNames {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 1, Tid: tracks[name],
			Args: map[string]string{"name": name},
		})
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].start.Before(spans[j].start) })
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.name, Ph: "X",
			Ts:  s.start.Sub(epoch).Microseconds(),
			Dur: s.dur.Microseconds(),
			Pid: 1, Tid: tracks[s.track],
		}
		if len(s.attrs) > 0 {
			ev.Args = make(map[string]string, len(s.attrs))
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&out)
}

// WriteFile writes the Chrome trace to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
