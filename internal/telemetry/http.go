package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Health aggregates readiness checks for /healthz. Liveness is implied
// by answering at all; readiness is the conjunction of every registered
// check (a draining agent registers one that fails once shutdown
// starts). A nil *Health is always ready.
type Health struct {
	mu     sync.Mutex
	names  []string
	checks map[string]func() error
}

// NewHealth returns a Health with no checks (always ready).
func NewHealth() *Health {
	return &Health{checks: make(map[string]func() error)}
}

// AddReadiness registers a named readiness check. The check runs on
// every /healthz request; returning an error marks the process not
// ready (503). Re-registering a name replaces the check.
func (h *Health) AddReadiness(name string, check func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.checks[name]; !ok {
		h.names = append(h.names, name)
	}
	h.checks[name] = check
}

// ServeHTTP answers 200 "ok" when every check passes, 503 naming the
// first failing check otherwise.
func (h *Health) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if h != nil {
		h.mu.Lock()
		names := append([]string(nil), h.names...)
		checks := make([]func() error, len(names))
		for i, n := range names {
			checks[i] = h.checks[n]
		}
		h.mu.Unlock()
		for i, check := range checks {
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %s: %v\n", names[i], err)
				return
			}
		}
	}
	fmt.Fprintln(w, "ok")
}

// Handler serves the registry as Prometheus text exposition v0.0.4.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteText(w) //nolint:errcheck // client gone; nothing to do
	})
}

// NewMux builds the shared telemetry mux: /metrics (exposition),
// /healthz (liveness + readiness), and the net/http/pprof suite under
// /debug/pprof/. The pprof handlers are registered explicitly rather
// than through http.DefaultServeMux so binaries embedding this mux
// don't leak profiling onto other listeners.
func NewMux(reg *Registry, h *Health) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.Handle("/healthz", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// NewServer wraps NewMux in an http.Server ready for Serve(listener) —
// the shape the dice binaries use for -metrics-addr.
func NewServer(reg *Registry, h *Health) *http.Server {
	return &http.Server{Handler: NewMux(reg, h)}
}
