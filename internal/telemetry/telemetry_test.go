package telemetry

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// buildFixedRegistry populates a registry with one instrument of every
// kind and deterministic values — the golden exposition fixture.
func buildFixedRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("dice_test_events_total", "Events observed.").Add(42)
	cv := reg.CounterVec("dice_test_rpc_total", "RPCs by method.", "method")
	cv.With("explore").Add(7)
	cv.With("checkpoint").Inc()
	reg.Gauge("dice_test_queue_depth", "Current queue depth.").Set(3)
	gv := reg.GaugeVec("dice_test_health", "Per-node health bit.", "node", "state")
	gv.With("as65001", "healthy").Set(1)
	gv.With("as65001", "failed").Set(0)
	h := reg.Histogram("dice_test_latency_seconds", "Call latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	hv := reg.HistogramVec("dice_test_bytes", "Payload bytes.", []float64{10, 100}, "dir")
	hv.With("sent").Observe(64)
	return reg
}

// TestExpositionGolden pins the rendered text format byte-for-byte:
// family ordering, label escaping, histogram buckets, float rendering.
// Regenerate with -update after an intentional format change.
func TestExpositionGolden(t *testing.T) {
	var b strings.Builder
	if err := buildFixedRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(want) {
		t.Errorf("exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestExpositionFormat(t *testing.T) {
	var b strings.Builder
	if err := buildFixedRegistry().WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dice_test_events_total counter",
		"dice_test_events_total 42",
		`dice_test_rpc_total{method="explore"} 7`,
		"# TYPE dice_test_queue_depth gauge",
		"dice_test_queue_depth 3",
		`dice_test_health{node="as65001",state="healthy"} 1`,
		`dice_test_latency_seconds_bucket{le="0.01"} 1`,
		`dice_test_latency_seconds_bucket{le="0.1"} 2`,
		`dice_test_latency_seconds_bucket{le="1"} 3`,
		`dice_test_latency_seconds_bucket{le="+Inf"} 4`,
		"dice_test_latency_seconds_sum 5.555",
		"dice_test_latency_seconds_count 4",
		`dice_test_bytes_bucket{dir="sent",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want+"\n") && !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("dice_test_esc_total", "Escaping.", "v").With("a\"b\\c\nd").Inc()
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `dice_test_esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped series %q missing in:\n%s", want, b.String())
	}
}

// TestNilSafety: every handle from a nil registry must be a usable
// no-op — the disabled-telemetry configuration has no branches.
func TestNilSafety(t *testing.T) {
	var reg *Registry
	reg.Counter("a", "").Inc()
	reg.Counter("a", "").Add(3)
	reg.CounterVec("b", "", "l").With("x").Inc()
	reg.Gauge("c", "").Set(1)
	reg.GaugeVec("d", "", "l").With("x").Add(-2)
	reg.Histogram("e", "", nil).Observe(0.5)
	reg.HistogramVec("f", "", nil, "l").With("x").Observe(1)
	if err := reg.WriteText(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("a", "").Value(); got != 0 {
		t.Errorf("nil counter Value = %d", got)
	}
	var tr *Tracer
	sp := tr.Start("track", "name")
	sp.End()
	tr.Add("track", "name", time.Time{}, time.Second)
	if tr.Len() != 0 {
		t.Errorf("nil tracer Len = %d", tr.Len())
	}
	var h *Health
	h.AddReadiness("x", func() error { return nil })
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 {
		t.Errorf("nil health = %d, want 200", rec.Code)
	}
}

// TestIdempotentRegistration: the same name hands back the same series
// (agents and coordinator share one registry in-process) and a
// conflicting re-registration panics.
func TestIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dice_test_shared_total", "Shared.")
	b := reg.Counter("dice_test_shared_total", "Shared.")
	a.Inc()
	b.Inc()
	if a.Value() != 2 || b.Value() != 2 {
		t.Errorf("re-registered counter not shared: %d, %d", a.Value(), b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Error("kind-conflicting re-registration did not panic")
		}
	}()
	reg.Gauge("dice_test_shared_total", "Now a gauge.")
}

func TestVecLabelArity(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("dice_test_arity_total", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	cv.With("only-one")
}

func TestGaugeConcurrentAdd(t *testing.T) {
	g := NewRegistry().Gauge("dice_test_g", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if g.Value() != 8000 {
		t.Errorf("gauge = %v, want 8000", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewRegistry().Histogram("dice_test_h", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	h.Observe(1.5)
	h.Observe(99)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.counts[0].Load(); got != 1 {
		t.Errorf("bucket le=1 raw count = %d, want 1", got)
	}
	if got := h.counts[2].Load(); got != 1 {
		t.Errorf("+Inf raw count = %d, want 1", got)
	}
}

// TestChromeTrace pins the export shape: X events in microseconds with
// per-track tids and thread_name metadata.
func TestChromeTrace(t *testing.T) {
	tr := NewTracer()
	base := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	tr.Add("coordinator", "round", base, 10*time.Millisecond, A("round", "1"))
	tr.Add("as65001", "explore", base.Add(time.Millisecond), 4*time.Millisecond)
	tr.Add("as65001", "rpc:inject_witness", base.Add(6*time.Millisecond), 2*time.Millisecond)

	var b strings.Builder
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   int64             `json:"ts"`
			Dur  int64             `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	var meta, spans int
	tids := make(map[string]int)
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			tids[ev.Args["name"]] = ev.Tid
		case "X":
			spans++
			if ev.Name == "round" {
				if ev.Ts != 0 || ev.Dur != 10000 {
					t.Errorf("round span ts=%d dur=%d, want 0/10000", ev.Ts, ev.Dur)
				}
				if ev.Args["round"] != "1" {
					t.Errorf("round span args = %v", ev.Args)
				}
			}
			if ev.Name == "explore" && ev.Ts != 1000 {
				t.Errorf("explore ts = %d, want 1000", ev.Ts)
			}
		}
	}
	if meta != 2 || spans != 3 {
		t.Fatalf("got %d metadata + %d span events, want 2 + 3", meta, spans)
	}
	if tids["coordinator"] == tids["as65001"] {
		t.Error("tracks share a tid")
	}
}

func TestSpanStartEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("node", "work", A("k", "v"))
	time.Sleep(time.Millisecond)
	sp.End()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if tr.spans[0].dur <= 0 {
		t.Error("span recorded non-positive duration")
	}
}

func TestHealthHandler(t *testing.T) {
	h := NewHealth()
	ready := true
	h.AddReadiness("drain", func() error {
		if !ready {
			return errors.New("draining")
		}
		return nil
	})
	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
		return rec
	}
	if rec := get(); rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("ready: %d %q", rec.Code, rec.Body.String())
	}
	ready = false
	if rec := get(); rec.Code != 503 || !strings.Contains(rec.Body.String(), "drain") {
		t.Errorf("not ready: %d %q", rec.Code, rec.Body.String())
	}
}

func TestMuxEndpoints(t *testing.T) {
	reg := buildFixedRegistry()
	srv := httptest.NewServer(NewMux(reg, NewHealth()))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":      "dice_test_events_total 42",
		"/healthz":      "ok",
		"/debug/pprof/": "profiles",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := make([]byte, 1<<16)
		n, _ := resp.Body.Read(body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body[:n]), want) {
			t.Errorf("%s: body missing %q", path, want)
		}
		if path == "/metrics" {
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
				t.Errorf("/metrics content-type = %q", ct)
			}
		}
	}
}
