// Package telemetry is the fleet observability layer: a dependency-free
// metrics registry (counters, gauges, histograms, with labels) rendering
// Prometheus text exposition format v0.0.4, a lightweight span tracer
// exporting Chrome trace_event JSON, and the HTTP endpoints
// (/metrics, /healthz, pprof) the dice binaries serve them on.
//
// Everything is nil-safe by design: a nil *Registry hands out nil
// instrument handles, and every operation on a nil handle is a no-op.
// Instrumented code therefore never branches on "telemetry enabled?" —
// it just calls Inc/Observe/Set — and the disabled configuration costs
// a nil check per call, which is what the overhead benchmark holds
// under 5% of a federated round.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"dice/internal/stats"
)

// metricKind discriminates the three instrument families.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// DefBuckets are the default histogram upper bounds (seconds), spanning
// sub-millisecond RPCs to ten-second rounds.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing count, built atop
// stats.Counter. Nil receivers are safe no-ops.
type Counter struct {
	n stats.Counter
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.n.Inc()
	}
}

// Add adds delta.
func (c *Counter) Add(delta uint64) {
	if c != nil {
		c.n.Add(delta)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Value()
}

// Gauge is a value that can go up and down, stored as atomic float64
// bits. Nil receivers are safe no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into cumulative le-buckets with a
// running sum, matching the Prometheus histogram model. Nil receivers
// are safe no-ops.
type Histogram struct {
	uppers []float64       // sorted upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(uppers)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(buckets []float64) *Histogram {
	uppers := append([]float64(nil), buckets...)
	sort.Float64s(uppers)
	return &Histogram{uppers: uppers, counts: make([]atomic.Uint64, len(uppers)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; past the end = +Inf.
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// family is one registered metric name: its metadata plus every labeled
// series created under it.
type family struct {
	name    string
	help    string
	kind    metricKind
	labels  []string
	buckets []float64 // histograms only

	mu     sync.RWMutex
	series map[string]any // joined label values -> *Counter/*Gauge/*Histogram
}

// labelKey joins label values into a map key. 0xff cannot appear in
// UTF-8 text, so the join is unambiguous.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m := f.series[key]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.series[key]; m != nil {
		return m
	}
	var made any
	switch f.kind {
	case kindCounter:
		made = new(Counter)
	case kindGauge:
		made = new(Gauge)
	case kindHistogram:
		made = newHistogram(f.buckets)
	}
	f.series[key] = made
	return made
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values, creating it on
// first use. Nil receivers return a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.get(values).(*Counter)
}

// GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values, creating it on
// first use. Nil receivers return a nil (no-op) gauge.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.get(values).(*Gauge)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values, creating it on
// first use. Nil receivers return a nil (no-op) histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.get(values).(*Histogram)
}

// Registry holds metric families and renders them as Prometheus text
// exposition v0.0.4. A nil *Registry hands out nil instruments, so one
// nil check at construction disables a whole subsystem's telemetry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// register returns the family for name, creating it on first use.
// Re-registering an existing name returns the existing family when the
// kind and labels match (several agents in one process share a registry)
// and panics on a mismatch — two meanings for one name is a bug.
func (r *Registry) register(name, help string, kind metricKind, labels []string, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("telemetry: %s re-registered with labels %v, was %v",
					name, labels, f.labels))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels: append([]string(nil), labels...),
		series: make(map[string]any),
	}
	if kind == kindHistogram {
		if buckets == nil {
			buckets = DefBuckets
		}
		f.buckets = append([]float64(nil), buckets...)
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindCounter, nil, nil).get(nil).(*Counter)
}

// CounterVec registers (or finds) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.register(name, help, kindCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindGauge, nil, nil).get(nil).(*Gauge)
}

// GaugeVec registers (or finds) a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.register(name, help, kindGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabeled histogram. A nil buckets
// slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(name, help, kindHistogram, nil, buckets).get(nil).(*Histogram)
}

// HistogramVec registers (or finds) a labeled histogram family. A nil
// buckets slice uses DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	return &HistogramVec{fam: r.register(name, help, kindHistogram, labels, buckets)}
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes a HELP string per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

// renderLabels formats {k1="v1",k2="v2"}; extra appends one more pair
// (the histogram le label). Empty input renders as "".
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteString(`"`)
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(extraValue)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders every family in Prometheus text exposition v0.0.4,
// families and series in deterministic sorted order (golden-testable).
// A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.RLock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, "\xff")
			}
			switch m := f.series[k].(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, renderLabels(f.labels, values, "", ""), m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(f.labels, values, "", ""), formatFloat(m.Value()))
			case *Histogram:
				var cum uint64
				for i, upper := range m.uppers {
					cum += m.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
						renderLabels(f.labels, values, "le", formatFloat(upper)), cum)
				}
				cum += m.counts[len(m.uppers)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, values, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name,
					renderLabels(f.labels, values, "", ""), formatFloat(m.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name,
					renderLabels(f.labels, values, "", ""), m.Count())
			}
		}
		f.mu.RUnlock()
	}
	_, err := io.WriteString(w, b.String())
	return err
}
