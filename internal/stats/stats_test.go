package stats

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestRate(t *testing.T) {
	var r Rate
	t0 := time.Unix(0, 0)
	r.Start(t0)
	r.Record(100)
	r.Stop(t0.Add(2 * time.Second))
	if got := r.PerSecond(); got != 50 {
		t.Fatalf("rate = %v", got)
	}
	// Second window accumulates.
	r.Start(t0.Add(10 * time.Second))
	r.Record(100)
	r.Stop(t0.Add(12 * time.Second))
	if got := r.PerSecond(); got != 50 {
		t.Fatalf("accumulated rate = %v", got)
	}
	if r.Events() != 200 {
		t.Fatalf("events = %d", r.Events())
	}
}

// TestRateMidWindow is the regression for the live-scrape bug: a read
// during a running window used to count that window's events against
// only the completed windows' elapsed time, overstating the rate (and
// reading 0 during a first, still-running window).
func TestRateMidWindow(t *testing.T) {
	var r Rate
	t0 := time.Unix(0, 0)

	// First window still running: 100 events over 2s reads 50/s, not 0.
	r.Start(t0)
	r.Record(100)
	if got := r.PerSecondAt(t0.Add(2 * time.Second)); got != 50 {
		t.Fatalf("first running window rate = %v, want 50", got)
	}
	r.Stop(t0.Add(2 * time.Second))

	// Second window running with prior completed elapsed: 200 events
	// over 2s+2s must read 50/s. The old code divided by the completed
	// 2s only and reported 100/s.
	r.Start(t0.Add(10 * time.Second))
	r.Record(100)
	if got := r.PerSecondAt(t0.Add(12 * time.Second)); got != 50 {
		t.Fatalf("mid-window rate = %v, want 50", got)
	}

	// Stopping at the same instant must agree with the mid-window read.
	r.Stop(t0.Add(12 * time.Second))
	if got := r.PerSecondAt(t0.Add(20 * time.Second)); got != 50 {
		t.Fatalf("stopped rate = %v, want 50", got)
	}

	// A clock that went backwards must not subtract elapsed time.
	r.Start(t0.Add(30 * time.Second))
	if got := r.PerSecondAt(t0.Add(29 * time.Second)); got != 50 {
		t.Fatalf("backwards-clock rate = %v, want 50", got)
	}
}

func TestRateEmpty(t *testing.T) {
	var r Rate
	if r.PerSecond() != 0 {
		t.Fatal("empty rate should be 0")
	}
	// Stop without start is a no-op.
	r.Stop(time.Now())
}

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{5, 1, 3, 2, 4} {
		s.Observe(v)
	}
	if s.N() != 5 || s.Min() != 1 || s.Max() != 5 {
		t.Fatalf("basics: n=%d min=%v max=%v", s.N(), s.Min(), s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Median() != 3 {
		t.Fatalf("median = %v", s.Median())
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("q0 = %v", got)
	}
	if got := s.Quantile(1); got != 5 {
		t.Fatalf("q1 = %v", got)
	}
	if got := s.Quantile(0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	want := math.Sqrt(2) // population stddev of 1..5
	if got := s.Stddev(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
	if s.String() == "" {
		t.Fatal("empty string")
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty summary should return zeros")
	}
}

func TestSummaryInterpolation(t *testing.T) {
	var s Summary
	s.Observe(0)
	s.Observe(10)
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
}

func TestTimer(t *testing.T) {
	var tm Timer
	d := tm.Time(func() { time.Sleep(time.Millisecond) })
	if d < time.Millisecond {
		t.Fatalf("duration = %v", d)
	}
	if tm.N() != 1 || tm.Max() <= 0 {
		t.Fatal("timer did not record")
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1f, q2f float64) bool {
		if len(raw) == 0 {
			return true
		}
		var s Summary
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Observe(v)
		}
		q1 := math.Abs(math.Mod(q1f, 1))
		q2 := math.Abs(math.Mod(q2f, 1))
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		a, b := s.Quantile(q1), s.Quantile(q2)
		return a <= b && a >= s.Min() && b <= s.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: mean is within [min, max].
func TestMeanBounded(t *testing.T) {
	f := func(raw []float64) bool {
		var s Summary
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			s.Observe(v)
			n++
		}
		if n == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-6 && m <= s.Max()+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
