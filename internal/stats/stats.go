// Package stats provides the small measurement toolkit the experiment
// harness uses: counters, rate meters over a wall-clock window, and
// streaming summaries (min/mean/max/percentiles) without external
// dependencies.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count, safe for concurrent
// use.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Rate measures events per second over explicit start/stop windows.
type Rate struct {
	mu      sync.Mutex
	started time.Time
	events  uint64
	elapsed time.Duration
	running bool
}

// Start begins (or resumes) the measurement window.
func (r *Rate) Start(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.running {
		r.started = now
		r.running = true
	}
}

// Record adds events to the window.
func (r *Rate) Record(n uint64) {
	r.mu.Lock()
	r.events += n
	r.mu.Unlock()
}

// Stop ends the window, accumulating elapsed time.
func (r *Rate) Stop(now time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.running {
		r.elapsed += now.Sub(r.started)
		r.running = false
	}
}

// PerSecond returns events per second across all windows, including an
// in-progress one measured up to time.Now.
func (r *Rate) PerSecond() float64 { return r.PerSecondAt(time.Now()) }

// PerSecondAt is PerSecond against an explicit clock. A running window
// contributes its events AND its elapsed time up to now: a live read
// landing mid-window (a /metrics scrape mid-round) previously counted
// the window's events against only the completed windows' elapsed,
// overstating the rate — and read 0 during a first, still-running
// window.
func (r *Rate) PerSecondAt(now time.Time) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	elapsed := r.elapsed
	if r.running {
		if d := now.Sub(r.started); d > 0 {
			elapsed += d
		}
	}
	if elapsed <= 0 {
		return 0
	}
	return float64(r.events) / elapsed.Seconds()
}

// Events returns the total recorded events.
func (r *Rate) Events() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.events
}

// Summary accumulates samples and reports order statistics. It stores
// samples (the experiments record at most tens of thousands), trading
// memory for exact percentiles.
type Summary struct {
	mu      sync.Mutex
	samples []float64
	sorted  bool
	sum     float64
}

// Observe records one sample.
func (s *Summary) Observe(v float64) {
	s.mu.Lock()
	s.samples = append(s.samples, v)
	s.sorted = false
	s.sum += v
	s.mu.Unlock()
}

// N returns the sample count.
func (s *Summary) N() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.samples)
}

// Mean returns the arithmetic mean (0 with no samples).
func (s *Summary) Mean() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.samples) == 0 {
		return 0
	}
	return s.sum / float64(len(s.samples))
}

// Min returns the smallest sample (0 with no samples).
func (s *Summary) Min() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[0]
}

// Max returns the largest sample (0 with no samples).
func (s *Summary) Max() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted()
	if len(s.samples) == 0 {
		return 0
	}
	return s.samples[len(s.samples)-1]
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation.
func (s *Summary) Quantile(q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ensureSorted()
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return s.samples[0]
	}
	if q >= 1 {
		return s.samples[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.samples[lo]
	}
	frac := pos - float64(lo)
	return s.samples[lo]*(1-frac) + s.samples[hi]*frac
}

// Median is Quantile(0.5).
func (s *Summary) Median() float64 { return s.Quantile(0.5) }

// Stddev returns the population standard deviation.
func (s *Summary) Stddev() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.samples)
	if n == 0 {
		return 0
	}
	mean := s.sum / float64(n)
	var ss float64
	for _, v := range s.samples {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n))
}

// String renders a one-line summary.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p50=%.3g mean=%.3g p95=%.3g max=%.3g",
		s.N(), s.Min(), s.Median(), s.Mean(), s.Quantile(0.95), s.Max())
}

// ensureSorted must be called with s.mu held.
func (s *Summary) ensureSorted() {
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
}

// Timer measures durations into a Summary.
type Timer struct {
	Summary
}

// Time runs fn and records its duration in milliseconds.
func (t *Timer) Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	d := time.Since(start)
	t.Observe(float64(d) / float64(time.Millisecond))
	return d
}
