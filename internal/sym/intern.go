package sym

import "sync"

// This file implements hash-consing for the IR: every node carries a
// precomputed 64-bit structural hash, constructors intern nodes in a
// sharded table, and Equal decides structural equality with a pointer
// fast path. The engine's dedup/memo layers key on these hashes (via
// Fingerprint) instead of rendered strings, so String() is a debug
// renderer only.
//
// Interning is an optimization, not an invariant: the table is bounded
// (shards reset when they exceed a cap) and genuine 64-bit hash
// collisions refuse to intern, so two structurally equal expressions are
// USUALLY — not always — the same pointer. Consumers that need exact
// equality must call Equal (pointer check first, then hash, then shallow
// structure), which stays cheap precisely because children usually are
// pointer-identical.

// mix64 is the splitmix64 finalizer: a fast, well-distributed 64-bit
// permutation used to combine hash parts.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Type tags keep hashes of different node kinds apart.
const (
	tagVar uint64 = 0xa11ce + iota
	tagConst
	tagBoolTrue
	tagBoolFalse
	tagBin
	tagCmp
	tagBoolBin
	tagNot
)

// nz maps the (1-in-2^64) zero hash onto a fixed nonzero value: node
// hash fields use 0 to mean "not computed" for struct-literal nodes.
func nz(h uint64) uint64 {
	if h == 0 {
		return 0x9e3779b97f4a7c15
	}
	return h
}

func hashString(s string) uint64 {
	// FNV-1a, allocation-free.
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func hashVar(id int, name string, w int) uint64 {
	h := mix64(tagVar ^ mix64(uint64(id)))
	h = mix64(h ^ hashString(name))
	return nz(mix64(h ^ uint64(w)))
}

func hashConst(v uint64, w int) uint64 {
	h := mix64(tagConst ^ mix64(v))
	return nz(mix64(h ^ uint64(w)))
}

func hashBin(op BinOp, x, y Expr, w int) uint64 {
	h := mix64(tagBin ^ mix64(uint64(op)))
	h = mix64(h ^ x.Hash())
	h = mix64(h ^ y.Hash())
	return nz(mix64(h ^ uint64(w)))
}

func hashCmp(op CmpOp, x, y Expr) uint64 {
	h := mix64(tagCmp ^ mix64(uint64(op)))
	h = mix64(h ^ x.Hash())
	return nz(mix64(h ^ y.Hash()))
}

func hashBoolBin(op BoolOp, x, y Expr) uint64 {
	h := mix64(tagBoolBin ^ mix64(uint64(op)))
	h = mix64(h ^ x.Hash())
	return nz(mix64(h ^ y.Hash()))
}

func hashNot(x Expr) uint64 {
	return nz(mix64(tagNot ^ x.Hash()))
}

// --- Intern table -----------------------------------------------------------

const (
	internShardCount = 64      // power of two
	internShardCap   = 1 << 14 // entries per shard before reset (~1M nodes total)
)

type internShard struct {
	mu sync.Mutex
	m  map[uint64]Expr
}

var internTab [internShardCount]internShard

func internShardFor(h uint64) *internShard {
	return &internTab[h&(internShardCount-1)]
}

// internPut stores e under h, resetting the shard at the cap. Interned
// entries are reused by pointer, so a reset only costs future duplicate
// allocations, never correctness.
func (s *internShard) put(h uint64, e Expr) {
	if s.m == nil || len(s.m) >= internShardCap {
		s.m = make(map[uint64]Expr, 64)
	}
	s.m[h] = e
}

func internVar(id int, name string, w int) *Var {
	h := hashVar(id, name, w)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if v, ok2 := e.(*Var); ok2 && v.ID == id && v.W == w && v.Name == name {
			return v
		}
	}
	v := &Var{ID: id, Name: name, W: w, h: h}
	s.put(h, v)
	return v
}

func internConst(v uint64, w int) *Const {
	h := hashConst(v, w)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if c, ok2 := e.(*Const); ok2 && c.V == v && c.W == w {
			return c
		}
	}
	c := &Const{V: v, W: w, h: h}
	s.put(h, c)
	return c
}

func internBin(op BinOp, x, y Expr, w int) *Bin {
	h := hashBin(op, x, y, w)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if b, ok2 := e.(*Bin); ok2 && b.Op == op && b.W == w && Equal(b.X, x) && Equal(b.Y, y) {
			return b
		}
	}
	b := &Bin{Op: op, X: x, Y: y, W: w, h: h}
	s.put(h, b)
	return b
}

func internCmp(op CmpOp, x, y Expr) *Cmp {
	h := hashCmp(op, x, y)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if c, ok2 := e.(*Cmp); ok2 && c.Op == op && Equal(c.X, x) && Equal(c.Y, y) {
			return c
		}
	}
	c := &Cmp{Op: op, X: x, Y: y, h: h}
	s.put(h, c)
	return c
}

func internBoolBin(op BoolOp, x, y Expr) *BoolBin {
	h := hashBoolBin(op, x, y)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if b, ok2 := e.(*BoolBin); ok2 && b.Op == op && Equal(b.X, x) && Equal(b.Y, y) {
			return b
		}
	}
	b := &BoolBin{Op: op, X: x, Y: y, h: h}
	s.put(h, b)
	return b
}

func internNot(x Expr) *Not {
	h := hashNot(x)
	s := internShardFor(h)
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.m[h]; ok {
		if n, ok2 := e.(*Not); ok2 && Equal(n.X, x) {
			return n
		}
	}
	n := &Not{X: x, h: h}
	s.put(h, n)
	return n
}

// InternedNodes reports the current number of interned nodes (for tests
// and capacity monitoring).
func InternedNodes() int {
	n := 0
	for i := range internTab {
		internTab[i].mu.Lock()
		n += len(internTab[i].m)
		internTab[i].mu.Unlock()
	}
	return n
}

// --- Structural equality ----------------------------------------------------

// Equal reports structural equality of two expressions. Interned nodes
// compare by pointer; the hash check rejects almost all unequal pairs
// before any recursion, and recursion bottoms out fast because interned
// children are pointer-identical.
func Equal(a, b Expr) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil {
		return false
	}
	if a.Hash() != b.Hash() {
		return false
	}
	switch t := a.(type) {
	case *Var:
		o, ok := b.(*Var)
		return ok && t.ID == o.ID && t.W == o.W && t.Name == o.Name
	case *Const:
		o, ok := b.(*Const)
		return ok && t.V == o.V && t.W == o.W
	case BoolConst:
		o, ok := b.(BoolConst)
		return ok && t == o
	case *Bin:
		o, ok := b.(*Bin)
		return ok && t.Op == o.Op && t.W == o.W && Equal(t.X, o.X) && Equal(t.Y, o.Y)
	case *Cmp:
		o, ok := b.(*Cmp)
		return ok && t.Op == o.Op && Equal(t.X, o.X) && Equal(t.Y, o.Y)
	case *BoolBin:
		o, ok := b.(*BoolBin)
		return ok && t.Op == o.Op && Equal(t.X, o.X) && Equal(t.Y, o.Y)
	case *Not:
		o, ok := b.(*Not)
		return ok && Equal(t.X, o.X)
	}
	return false
}

// PathsEqual reports element-wise structural equality of two constraint
// sequences (the collision-verification step behind fingerprint-keyed
// dedup).
func PathsEqual(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Equal(a[i], b[i]) {
			return false
		}
	}
	return true
}

// --- Fingerprints -----------------------------------------------------------

// Fingerprint is a 128-bit order-sensitive rolling hash over a sequence
// of expressions. It replaces rendered strings as the key for path
// signatures, negation dedup, and solver memoization: Extend is O(1), so
// per-branch prefix keys roll along a path instead of being rebuilt from
// scratch. Two equal sequences always produce equal fingerprints;
// consumers that must be exact under adversarial collisions pair the
// fingerprint with a PathsEqual verification of the keyed expressions.
type Fingerprint struct {
	Hi, Lo uint64
}

// Odd multipliers make the rolling step injective in each lane; the two
// lanes evolve independently, so a collision must happen in both at once.
const (
	fpMulLo = 0x9e3779b97f4a7c15
	fpMulHi = 0xc2b2ae3d27d4eb4f
)

// Extend returns the fingerprint of the sequence with e appended. O(1).
func (f Fingerprint) Extend(e Expr) Fingerprint {
	h := e.Hash()
	return Fingerprint{
		Lo: f.Lo*fpMulLo + h,
		Hi: f.Hi*fpMulHi + mix64(h),
	}
}

// Mix folds a domain-separation tag into the fingerprint (e.g. to mark
// the boundary between assumption and branch constraints in a path key).
func (f Fingerprint) Mix(tag uint64) Fingerprint {
	return Fingerprint{
		Lo: f.Lo*fpMulLo + mix64(tag^tagNot),
		Hi: f.Hi*fpMulHi + mix64(tag),
	}
}

// FingerprintPath fingerprints a whole constraint sequence. Equivalent
// to extending the zero Fingerprint with each element in order.
func FingerprintPath(cs []Expr) Fingerprint {
	var f Fingerprint
	for _, c := range cs {
		f = f.Extend(c)
	}
	return f
}
