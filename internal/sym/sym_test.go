package sym

import (
	"testing"
	"testing/quick"
)

func v32(id int, name string) *Var { return &Var{ID: id, Name: name, W: 32} }

func TestConstFolding(t *testing.T) {
	e := NewBin(OpAdd, NewConst(2, 32), NewConst(3, 32))
	c, ok := e.(*Const)
	if !ok || c.V != 5 {
		t.Fatalf("2+3 did not fold: %v", e)
	}
	e = NewCmp(OpLt, NewConst(2, 32), NewConst(3, 32))
	if e != True {
		t.Fatalf("2<3 did not fold to true: %v", e)
	}
	e = NewBool(OpLAnd, True, False)
	if e != False {
		t.Fatalf("true&&false did not fold: %v", e)
	}
}

func TestIdentities(t *testing.T) {
	x := v32(1, "x")
	if got := NewBin(OpAdd, x, NewConst(0, 32)); got != Expr(x) {
		t.Errorf("x+0 should simplify to x, got %v", got)
	}
	if got := NewBin(OpMul, x, NewConst(1, 32)); got != Expr(x) {
		t.Errorf("x*1 should simplify to x, got %v", got)
	}
	if got := NewBin(OpAnd, x, NewConst(0, 32)); got.String() != "0:32" {
		t.Errorf("x&0 should fold to 0, got %v", got)
	}
	if got := NewBin(OpAnd, x, NewConst(0xffffffff, 32)); got != Expr(x) {
		t.Errorf("x&~0 should simplify to x, got %v", got)
	}
	if got := NewBin(OpOr, NewConst(0, 32), x); got != Expr(x) {
		t.Errorf("0|x should simplify to x, got %v", got)
	}
	if got := NewBin(OpMul, NewConst(0, 32), x); got.String() != "0:32" {
		t.Errorf("0*x should fold to 0, got %v", got)
	}
}

func TestNotCanonicalization(t *testing.T) {
	x := v32(1, "x")
	cmp := NewCmp(OpEq, x, NewConst(7, 32))
	neg := NewNot(cmp)
	nc, ok := neg.(*Cmp)
	if !ok || nc.Op != OpNe {
		t.Fatalf("not(x==7) should become x!=7, got %v", neg)
	}
	if back := NewNot(neg); back.String() != cmp.String() {
		t.Fatalf("double negation should cancel: %v", back)
	}
	n := NewNot(&BoolBin{Op: OpLOr, X: cmp, Y: cmp})
	if _, ok := n.(*Not); !ok {
		t.Fatalf("negation of connective should wrap in Not, got %T", n)
	}
	if NewNot(True) != False || NewNot(False) != True {
		t.Fatal("boolean constant negation wrong")
	}
}

func TestCmpOpNegated(t *testing.T) {
	pairs := map[CmpOp]CmpOp{OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpLe: OpGt, OpGt: OpLe, OpGe: OpLt}
	for op, want := range pairs {
		if op.Negated() != want {
			t.Errorf("%v.Negated() = %v, want %v", op, op.Negated(), want)
		}
		if op.Negated().Negated() != op {
			t.Errorf("%v double negation not identity", op)
		}
	}
}

func TestEvalArithmetic(t *testing.T) {
	x, y := v32(1, "x"), v32(2, "y")
	env := Env{1: 10, 2: 3}
	cases := []struct {
		op   BinOp
		want uint64
	}{
		{OpAdd, 13}, {OpSub, 7}, {OpMul, 30}, {OpDiv, 3}, {OpMod, 1},
		{OpAnd, 2}, {OpOr, 11}, {OpXor, 9}, {OpShl, 80}, {OpShr, 1},
	}
	for _, c := range cases {
		e := &Bin{Op: c.op, X: x, Y: y, W: 32}
		if got := Eval(e, env); got != c.want {
			t.Errorf("%v: got %d want %d", c.op, got, c.want)
		}
	}
}

func TestEvalEdgeCases(t *testing.T) {
	x := v32(1, "x")
	env := Env{1: 5}
	// Division by zero is total: yields all-ones at width.
	if got := Eval(&Bin{Op: OpDiv, X: x, Y: NewConst(0, 32), W: 32}, env); got != 0xffffffff {
		t.Errorf("x/0 = %d, want all-ones", got)
	}
	if got := Eval(&Bin{Op: OpMod, X: x, Y: NewConst(0, 32), W: 32}, env); got != 5 {
		t.Errorf("x%%0 = %d, want x", got)
	}
	// Oversized shifts yield zero.
	if got := Eval(&Bin{Op: OpShl, X: x, Y: NewConst(40, 32), W: 32}, env); got != 0 {
		t.Errorf("x<<40 = %d, want 0", got)
	}
	// Wraparound at width.
	e := &Bin{Op: OpAdd, X: NewConst(0xffffffff, 32), Y: NewConst(1, 32), W: 32}
	if got := Eval(e, nil); got != 0 {
		t.Errorf("wraparound add = %d, want 0", got)
	}
	// Unbound variable evaluates to zero.
	if got := Eval(v32(99, "unbound"), Env{}); got != 0 {
		t.Errorf("unbound var = %d, want 0", got)
	}
}

func TestEvalWidthMasking(t *testing.T) {
	v8 := &Var{ID: 1, Name: "b", W: 8}
	if got := Eval(v8, Env{1: 0x1ff}); got != 0xff {
		t.Errorf("8-bit var should mask to 0xff, got %#x", got)
	}
	c := NewConst(0x1ff, 8)
	if c.V != 0xff {
		t.Errorf("const not masked at construction: %#x", c.V)
	}
}

func TestEvalBoolFormulas(t *testing.T) {
	x := v32(1, "x")
	lt := NewCmp(OpLt, x, NewConst(10, 32))
	ge := NewCmp(OpGe, x, NewConst(5, 32))
	both := NewBool(OpLAnd, lt, ge)
	either := NewBool(OpLOr, lt, ge)
	neg := NewNot(both)

	for _, c := range []struct {
		v       uint64
		b, e, n bool
	}{
		{7, true, true, false},
		{3, false, true, true},
		{12, false, true, true},
	} {
		env := Env{1: c.v}
		if EvalBool(both, env) != c.b {
			t.Errorf("x=%d: both = %v", c.v, !c.b)
		}
		if EvalBool(either, env) != c.e {
			t.Errorf("x=%d: either = %v", c.v, !c.e)
		}
		if EvalBool(neg, env) != c.n {
			t.Errorf("x=%d: neg = %v", c.v, !c.n)
		}
	}
}

func TestVarsCollection(t *testing.T) {
	x, y := v32(1, "x"), v32(2, "y")
	e := NewBool(OpLAnd,
		NewCmp(OpEq, NewBin(OpAdd, x, y), NewConst(3, 32)),
		NewCmp(OpNe, x, NewConst(0, 32)))
	vs := Vars(e, nil)
	if len(vs) != 2 {
		t.Fatalf("want 2 vars, got %d", len(vs))
	}
	// Dedup against preexisting slice.
	vs2 := Vars(e, vs)
	if len(vs2) != 2 {
		t.Fatalf("dedup failed: %d", len(vs2))
	}
}

func TestConjoin(t *testing.T) {
	if Conjoin(nil) != True {
		t.Fatal("empty conjunction should be true")
	}
	x := v32(1, "x")
	c1 := NewCmp(OpGt, x, NewConst(1, 32))
	c2 := NewCmp(OpLt, x, NewConst(5, 32))
	e := Conjoin([]Expr{c1, c2})
	if !EvalBool(e, Env{1: 3}) || EvalBool(e, Env{1: 7}) {
		t.Fatal("conjunction semantics wrong")
	}
}

// Property: NewNot is a semantic complement for arbitrary comparisons.
func TestNegationIsComplement(t *testing.T) {
	f := func(xv, yv uint32, opRaw uint8) bool {
		op := CmpOp(opRaw % 6)
		x, y := v32(1, "x"), v32(2, "y")
		c := NewCmp(op, x, y)
		n := NewNot(c)
		env := Env{1: uint64(xv), 2: uint64(yv)}
		return EvalBool(c, env) != EvalBool(n, env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: constant folding agrees with evaluation for every binop.
func TestFoldingMatchesEval(t *testing.T) {
	f := func(xv, yv uint32, opRaw uint8) bool {
		op := BinOp(opRaw % 10)
		folded := NewBin(op, NewConst(uint64(xv), 32), NewConst(uint64(yv), 32))
		c, ok := folded.(*Const)
		if !ok {
			return false
		}
		raw := &Bin{Op: op, X: v32(1, "x"), Y: v32(2, "y"), W: 32}
		return c.V == Eval(raw, Env{1: uint64(xv), 2: uint64(yv)})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: String is stable and injective enough for hash-consing of the
// constraint store: structurally equal expressions render equally.
func TestStringStable(t *testing.T) {
	x := v32(1, "x")
	a := NewCmp(OpLt, NewBin(OpAnd, x, NewConst(0xff, 32)), NewConst(10, 32))
	b := NewCmp(OpLt, NewBin(OpAnd, v32(1, "x"), NewConst(0xff, 32)), NewConst(10, 32))
	if a.String() != b.String() {
		t.Fatalf("structural equality not reflected in String: %q vs %q", a, b)
	}
}

func TestFormatPath(t *testing.T) {
	x := v32(1, "x")
	cs := []Expr{
		NewCmp(OpGt, x, NewConst(1, 32)),
		NewCmp(OpLt, x, NewConst(5, 32)),
	}
	s := FormatPath(cs)
	if s == "" || s == FormatPath(cs[:1]) {
		t.Fatalf("FormatPath output suspicious: %q", s)
	}
}

func BenchmarkEvalDeep(b *testing.B) {
	x := v32(1, "x")
	e := Expr(x)
	for i := 0; i < 64; i++ {
		e = NewBin(OpAdd, e, NewBin(OpXor, x, NewConst(uint64(i), 32)))
	}
	env := Env{1: 12345}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Eval(e, env)
	}
}
