// Package sym defines the symbolic expression IR used by the concolic
// engine (the Oasis replacement). Expressions are fixed-width unsigned
// bitvector terms (width 1..64) plus boolean formulas over comparisons.
//
// The IR is immutable and hash-consed: constructors return canonical,
// lightly simplified, interned expressions carrying a precomputed 64-bit
// structural hash, so structural equality (Equal) is pointer/hash
// equality in the common case and dedup keys are Fingerprints rather
// than rendered strings (see intern.go).
package sym

import (
	"fmt"
	"strings"
)

// Expr is a symbolic expression. Bitvector expressions have Width in
// 1..64; boolean expressions report Width 1 and IsBool true.
type Expr interface {
	// Width is the bit width of the expression's value.
	Width() int
	// IsBool reports whether the expression is a boolean formula
	// (comparison or connective) rather than a bitvector term.
	IsBool() bool
	// Hash is the node's 64-bit structural hash (never 0 for a valid
	// node): two structurally equal expressions always hash equal.
	// Constructors precompute it; struct-literal nodes compute on call.
	Hash() uint64
	// String renders the expression for logs and debugging. Structurally
	// identical expressions render identically, but rendering is O(size)
	// and allocates — keys on hot paths use Hash/Fingerprint instead.
	String() string
}

// maskFor returns the value mask for a width.
func maskFor(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Var is a free symbolic variable (an engine-controlled input).
type Var struct {
	ID   int    // unique per engine run
	Name string // human-readable, e.g. "nlri0.prefix"
	W    int
	h    uint64 // structural hash; 0 for struct-literal nodes
}

// NewVar returns the interned variable node for (id, name, w).
func NewVar(id int, name string, w int) *Var {
	return internVar(id, name, w)
}

func (v *Var) Width() int   { return v.W }
func (v *Var) IsBool() bool { return false }
func (v *Var) Hash() uint64 {
	if v.h != 0 {
		return v.h
	}
	return hashVar(v.ID, v.Name, v.W)
}
func (v *Var) String() string {
	return fmt.Sprintf("%s#%d:%d", v.Name, v.ID, v.W)
}

// Const is a constant bitvector value.
type Const struct {
	V uint64
	W int
	h uint64 // structural hash; 0 for struct-literal nodes
}

// NewConst returns the interned constant of the given width, masking the
// value.
func NewConst(v uint64, w int) *Const {
	return internConst(v&maskFor(w), w)
}

func (c *Const) Width() int   { return c.W }
func (c *Const) IsBool() bool { return false }
func (c *Const) Hash() uint64 {
	if c.h != 0 {
		return c.h
	}
	return hashConst(c.V, c.W)
}
func (c *Const) String() string { return fmt.Sprintf("%d:%d", c.V, c.W) }

// BoolConst is a constant truth value.
type BoolConst bool

// True and False are the boolean constants.
var (
	True  = BoolConst(true)
	False = BoolConst(false)
)

func (b BoolConst) Width() int   { return 1 }
func (b BoolConst) IsBool() bool { return true }
func (b BoolConst) Hash() uint64 {
	if bool(b) {
		return nz(mix64(tagBoolTrue))
	}
	return nz(mix64(tagBoolFalse))
}
func (b BoolConst) String() string {
	if bool(b) {
		return "true"
	}
	return "false"
}

// BinOp is a bitvector binary operator.
type BinOp int

// Bitvector operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv // unsigned; x/0 defined as all-ones (hardware-ish, keeps eval total)
	OpMod // x%0 defined as x
	OpAnd
	OpOr
	OpXor
	OpShl // shift amounts >= width yield 0
	OpShr
)

var binOpNames = [...]string{"add", "sub", "mul", "div", "mod", "and", "or", "xor", "shl", "shr"}

func (op BinOp) String() string {
	if int(op) < len(binOpNames) {
		return binOpNames[op]
	}
	return fmt.Sprintf("binop(%d)", int(op))
}

// Bin is a binary bitvector operation. Both operands share the result
// width (operands are implicitly zero-extended/truncated by constructors).
type Bin struct {
	Op   BinOp
	X, Y Expr
	W    int
	h    uint64 // structural hash; 0 for struct-literal nodes
}

func (b *Bin) Width() int   { return b.W }
func (b *Bin) IsBool() bool { return false }
func (b *Bin) Hash() uint64 {
	if b.h != 0 {
		return b.h
	}
	return hashBin(b.Op, b.X, b.Y, b.W)
}
func (b *Bin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.Op, b.X, b.Y)
}

// CmpOp is an unsigned comparison operator.
type CmpOp int

// Comparison operators (unsigned).
const (
	OpEq CmpOp = iota
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var cmpOpNames = [...]string{"==", "!=", "<", "<=", ">", ">="}

func (op CmpOp) String() string {
	if int(op) < len(cmpOpNames) {
		return cmpOpNames[op]
	}
	return fmt.Sprintf("cmpop(%d)", int(op))
}

// Negated returns the complementary comparison (Eq<->Ne, Lt<->Ge, ...).
func (op CmpOp) Negated() CmpOp {
	switch op {
	case OpEq:
		return OpNe
	case OpNe:
		return OpEq
	case OpLt:
		return OpGe
	case OpLe:
		return OpGt
	case OpGt:
		return OpLe
	case OpGe:
		return OpLt
	}
	return op
}

// Cmp is an unsigned comparison producing a boolean.
type Cmp struct {
	Op   CmpOp
	X, Y Expr
	h    uint64 // structural hash; 0 for struct-literal nodes
}

func (c *Cmp) Width() int   { return 1 }
func (c *Cmp) IsBool() bool { return true }
func (c *Cmp) Hash() uint64 {
	if c.h != 0 {
		return c.h
	}
	return hashCmp(c.Op, c.X, c.Y)
}
func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.X, c.Op, c.Y)
}

// BoolOp is a boolean connective.
type BoolOp int

// Boolean connectives.
const (
	OpLAnd BoolOp = iota
	OpLOr
)

func (op BoolOp) String() string {
	if op == OpLAnd {
		return "&&"
	}
	return "||"
}

// BoolBin is a boolean connective over two boolean formulas.
type BoolBin struct {
	Op   BoolOp
	X, Y Expr
	h    uint64 // structural hash; 0 for struct-literal nodes
}

func (b *BoolBin) Width() int   { return 1 }
func (b *BoolBin) IsBool() bool { return true }
func (b *BoolBin) Hash() uint64 {
	if b.h != 0 {
		return b.h
	}
	return hashBoolBin(b.Op, b.X, b.Y)
}
func (b *BoolBin) String() string {
	return fmt.Sprintf("(%s %s %s)", b.X, b.Op, b.Y)
}

// Not is boolean negation.
type Not struct {
	X Expr
	h uint64 // structural hash; 0 for struct-literal nodes
}

func (n *Not) Width() int   { return 1 }
func (n *Not) IsBool() bool { return true }
func (n *Not) Hash() uint64 {
	if n.h != 0 {
		return n.h
	}
	return hashNot(n.X)
}
func (n *Not) String() string { return fmt.Sprintf("(not %s)", n.X) }

// --- Constructors with light canonicalization ------------------------------

// widen returns e adjusted to width w. Constants are re-masked; other
// expressions are assumed to already carry values that fit (the concolic
// layer only mixes widths through explicit Extend/Truncate).
func widen(e Expr, w int) Expr {
	if c, ok := e.(*Const); ok && c.W != w {
		return NewConst(c.V, w)
	}
	return e
}

// NewBin builds a binary bitvector expression, constant-folding when both
// operands are constants and applying identity simplifications.
func NewBin(op BinOp, x, y Expr) Expr {
	w := x.Width()
	if y.Width() > w {
		w = y.Width()
	}
	x, y = widen(x, w), widen(y, w)

	cx, xConst := x.(*Const)
	cy, yConst := y.(*Const)
	if xConst && yConst {
		return NewConst(evalBin(op, cx.V, cy.V, w), w)
	}
	// Identities keep the constraint store small and stable.
	if yConst {
		switch {
		case cy.V == 0 && (op == OpAdd || op == OpSub || op == OpOr || op == OpXor || op == OpShl || op == OpShr):
			return x
		case cy.V == 0 && op == OpAnd:
			return NewConst(0, w)
		case cy.V == 0 && op == OpMul:
			return NewConst(0, w)
		case cy.V == 1 && (op == OpMul || op == OpDiv):
			return x
		case cy.V == maskFor(w) && op == OpAnd:
			return x
		case cy.V == maskFor(w) && op == OpOr:
			return NewConst(maskFor(w), w)
		}
	}
	if xConst {
		switch {
		case cx.V == 0 && (op == OpAdd || op == OpOr || op == OpXor):
			return y
		case cx.V == 0 && (op == OpAnd || op == OpMul):
			return NewConst(0, w)
		case cx.V == 1 && op == OpMul:
			return y
		case cx.V == maskFor(w) && op == OpAnd:
			return y
		}
	}
	return internBin(op, x, y, w)
}

// NewCmp builds a comparison, constant-folding when possible.
func NewCmp(op CmpOp, x, y Expr) Expr {
	w := x.Width()
	if y.Width() > w {
		w = y.Width()
	}
	x, y = widen(x, w), widen(y, w)
	if cx, ok := x.(*Const); ok {
		if cy, ok2 := y.(*Const); ok2 {
			return BoolConst(evalCmp(op, cx.V, cy.V))
		}
	}
	return internCmp(op, x, y)
}

// NewBool builds a boolean connective with short-circuit folding.
func NewBool(op BoolOp, x, y Expr) Expr {
	if bx, ok := x.(BoolConst); ok {
		if op == OpLAnd {
			if bool(bx) {
				return y
			}
			return False
		}
		if bool(bx) {
			return True
		}
		return y
	}
	if by, ok := y.(BoolConst); ok {
		if op == OpLAnd {
			if bool(by) {
				return x
			}
			return False
		}
		if bool(by) {
			return True
		}
		return x
	}
	return internBoolBin(op, x, y)
}

// NewNot negates a boolean formula; comparisons flip their operator and
// double negation cancels, so constraints stay in a small canonical form.
func NewNot(x Expr) Expr {
	switch e := x.(type) {
	case BoolConst:
		return BoolConst(!bool(e))
	case *Not:
		return e.X
	case *Cmp:
		return internCmp(e.Op.Negated(), e.X, e.Y)
	}
	return internNot(x)
}

// --- Evaluation -------------------------------------------------------------

// Env maps variable IDs to concrete values.
type Env map[int]uint64

// evalBin computes a binary op on concrete values at width w.
func evalBin(op BinOp, x, y uint64, w int) uint64 {
	m := maskFor(w)
	x, y = x&m, y&m
	switch op {
	case OpAdd:
		return (x + y) & m
	case OpSub:
		return (x - y) & m
	case OpMul:
		return (x * y) & m
	case OpDiv:
		if y == 0 {
			return m // total definition: div-by-zero yields all-ones
		}
		return (x / y) & m
	case OpMod:
		if y == 0 {
			return x
		}
		return (x % y) & m
	case OpAnd:
		return x & y
	case OpOr:
		return x | y
	case OpXor:
		return x ^ y
	case OpShl:
		if y >= uint64(w) {
			return 0
		}
		return (x << y) & m
	case OpShr:
		if y >= uint64(w) {
			return 0
		}
		return (x >> y) & m
	}
	panic(fmt.Sprintf("sym: unknown binop %d", op))
}

// evalCmp computes an unsigned comparison on concrete values.
func evalCmp(op CmpOp, x, y uint64) bool {
	switch op {
	case OpEq:
		return x == y
	case OpNe:
		return x != y
	case OpLt:
		return x < y
	case OpLe:
		return x <= y
	case OpGt:
		return x > y
	case OpGe:
		return x >= y
	}
	panic(fmt.Sprintf("sym: unknown cmpop %d", op))
}

// Eval computes the concrete value of a bitvector expression under env.
// Unbound variables evaluate to 0. Boolean formulas return 0 or 1.
func Eval(e Expr, env Env) uint64 {
	switch t := e.(type) {
	case *Var:
		return env[t.ID] & maskFor(t.W)
	case *Const:
		return t.V
	case BoolConst:
		if bool(t) {
			return 1
		}
		return 0
	case *Bin:
		return evalBin(t.Op, Eval(t.X, env), Eval(t.Y, env), t.W)
	case *Cmp:
		if evalCmp(t.Op, Eval(t.X, env), Eval(t.Y, env)) {
			return 1
		}
		return 0
	case *BoolBin:
		x := Eval(t.X, env) != 0
		y := Eval(t.Y, env) != 0
		if t.Op == OpLAnd {
			if x && y {
				return 1
			}
			return 0
		}
		if x || y {
			return 1
		}
		return 0
	case *Not:
		if Eval(t.X, env) != 0 {
			return 0
		}
		return 1
	}
	panic(fmt.Sprintf("sym: unknown expr %T", e))
}

// EvalBool evaluates a boolean formula under env.
func EvalBool(e Expr, env Env) bool { return Eval(e, env) != 0 }

// EvalBinOp computes a binary op on concrete values at width w — the
// concolic layer's concrete fast path, with no expression construction.
func EvalBinOp(op BinOp, x, y uint64, w int) uint64 { return evalBin(op, x, y, w) }

// EvalCmpOp computes an unsigned comparison on concrete values masked to
// width w.
func EvalCmpOp(op CmpOp, x, y uint64, w int) bool {
	m := maskFor(w)
	return evalCmp(op, x&m, y&m)
}

// Vars appends the distinct variables appearing in e to out (deduplicated
// by ID) and returns the extended slice.
func Vars(e Expr, out []*Var) []*Var {
	seen := make(map[int]bool, len(out))
	for _, v := range out {
		seen[v.ID] = true
	}
	var walk func(Expr)
	walk = func(x Expr) {
		switch t := x.(type) {
		case *Var:
			if !seen[t.ID] {
				seen[t.ID] = true
				out = append(out, t)
			}
		case *Bin:
			walk(t.X)
			walk(t.Y)
		case *Cmp:
			walk(t.X)
			walk(t.Y)
		case *BoolBin:
			walk(t.X)
			walk(t.Y)
		case *Not:
			walk(t.X)
		}
	}
	walk(e)
	return out
}

// IsConst reports whether e is a constant (bitvector or boolean) and
// returns its value.
func IsConst(e Expr) (uint64, bool) {
	switch t := e.(type) {
	case *Const:
		return t.V, true
	case BoolConst:
		if bool(t) {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// Conjoin folds a list of boolean formulas into a single conjunction.
func Conjoin(cs []Expr) Expr {
	acc := Expr(True)
	for _, c := range cs {
		acc = NewBool(OpLAnd, acc, c)
	}
	return acc
}

// FormatPath renders a path-constraint list compactly. Rendering is
// O(total size) and allocates: it is for logs and debug output only —
// dedup and memo keys use FingerprintPath.
func FormatPath(cs []Expr) string {
	var b strings.Builder
	for i, c := range cs {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(c.String())
	}
	return b.String()
}
