package sym

import "testing"

// TestInterningReturnsSamePointer: constructing the same expression twice
// yields the same node, so structural equality is pointer equality on the
// hot path.
func TestInterningReturnsSamePointer(t *testing.T) {
	x := NewVar(1, "x", 32)
	if NewVar(1, "x", 32) != x {
		t.Fatal("Var not interned")
	}
	if NewConst(42, 32) != NewConst(42, 32) {
		t.Fatal("Const not interned")
	}
	a := NewBin(OpAdd, x, NewConst(7, 32))
	b := NewBin(OpAdd, x, NewConst(7, 32))
	if a != b {
		t.Fatal("Bin not interned")
	}
	c1 := NewCmp(OpLt, x, NewConst(9, 32))
	c2 := NewCmp(OpLt, x, NewConst(9, 32))
	if c1 != c2 {
		t.Fatal("Cmp not interned")
	}
	if NewNot(c1) != NewNot(c2) {
		t.Fatal("negation not interned")
	}
}

// TestHashStructural: structurally equal expressions hash equal whether
// interned or built as struct literals, and hashes are never zero.
func TestHashStructural(t *testing.T) {
	built := NewBin(OpAnd, NewVar(3, "f", 16), NewConst(0xFF, 16))
	literal := &Bin{Op: OpAnd, X: &Var{ID: 3, Name: "f", W: 16}, Y: &Const{V: 0xFF, W: 16}, W: 16}
	if built.Hash() != literal.Hash() {
		t.Fatal("literal and interned node hash differently")
	}
	if !Equal(built, literal) {
		t.Fatal("Equal rejects structurally equal literal")
	}
	for _, e := range []Expr{built, literal, True, False, NewConst(0, 1)} {
		if e.Hash() == 0 {
			t.Fatalf("zero hash for %v", e)
		}
	}
	if NewConst(1, 8).Hash() == NewConst(1, 9).Hash() {
		t.Fatal("width not hashed")
	}
	if NewCmp(OpLt, NewVar(0, "a", 8), NewVar(1, "b", 8)).Hash() ==
		NewCmp(OpGt, NewVar(0, "a", 8), NewVar(1, "b", 8)).Hash() {
		t.Fatal("operator not hashed")
	}
}

// TestEqualDistinguishes: Equal must separate expressions differing in
// any field, at any depth.
func TestEqualDistinguishes(t *testing.T) {
	x, y := NewVar(0, "x", 32), NewVar(1, "y", 32)
	cases := [][2]Expr{
		{x, y},
		{NewConst(1, 32), NewConst(2, 32)},
		{NewConst(1, 32), NewConst(1, 16)},
		{NewBin(OpAdd, x, y), NewBin(OpSub, x, y)},
		{NewCmp(OpLt, x, y), NewCmp(OpLt, y, x)},
		{True, False},
	}
	for _, c := range cases {
		if Equal(c[0], c[1]) {
			t.Errorf("Equal(%v, %v) = true", c[0], c[1])
		}
	}
}

// TestFingerprintRolling: FingerprintPath must equal the incremental
// Extend chain (the frontier rolls prefixes O(1) per branch), and must be
// order- and boundary-sensitive.
func TestFingerprintRolling(t *testing.T) {
	x := NewVar(0, "x", 32)
	cs := []Expr{
		NewCmp(OpLt, x, NewConst(10, 32)),
		NewCmp(OpGt, x, NewConst(2, 32)),
		NewCmp(OpNe, x, NewConst(5, 32)),
	}
	var rolled Fingerprint
	for _, c := range cs {
		rolled = rolled.Extend(c)
	}
	if rolled != FingerprintPath(cs) {
		t.Fatal("incremental Extend disagrees with FingerprintPath")
	}
	if FingerprintPath(cs[:2]) == FingerprintPath(cs) {
		t.Fatal("prefix collides with extension")
	}
	perm := []Expr{cs[1], cs[0], cs[2]}
	if FingerprintPath(perm) == FingerprintPath(cs) {
		t.Fatal("permutation collides")
	}
	if (Fingerprint{}).Mix(1).Extend(cs[0]) == (Fingerprint{}).Extend(cs[0]) {
		t.Fatal("Mix tag has no effect")
	}
	// Deterministic across re-construction (keys must be stable across
	// rounds and engines).
	cs2 := []Expr{
		NewCmp(OpLt, NewVar(0, "x", 32), NewConst(10, 32)),
		NewCmp(OpGt, NewVar(0, "x", 32), NewConst(2, 32)),
		NewCmp(OpNe, NewVar(0, "x", 32), NewConst(5, 32)),
	}
	if FingerprintPath(cs2) != FingerprintPath(cs) {
		t.Fatal("fingerprint unstable across re-construction")
	}
}

// TestEvalOpsMatchExprEval: the allocation-free concrete fast path must
// agree with expression evaluation for every operator.
func TestEvalOpsMatchExprEval(t *testing.T) {
	env := Env{0: 0xDEAD, 1: 0x0BEE}
	x, y := NewVar(0, "x", 16), NewVar(1, "y", 16)
	for op := OpAdd; op <= OpShr; op++ {
		want := Eval(NewBin(op, x, y), env)
		if got := EvalBinOp(op, env[0], env[1], 16); got != want {
			t.Errorf("EvalBinOp(%v) = %d, want %d", op, got, want)
		}
	}
	for op := OpEq; op <= OpGe; op++ {
		want := EvalBool(NewCmp(op, x, y), env)
		if got := EvalCmpOp(op, env[0], env[1], 16); got != want {
			t.Errorf("EvalCmpOp(%v) = %v, want %v", op, got, want)
		}
	}
	// Width masking: values beyond the width must be truncated first.
	if !EvalCmpOp(OpEq, 0x1FF, 0xFF, 8) {
		t.Fatal("EvalCmpOp did not mask operands to width")
	}
}

// TestInternShardReset: overflowing a shard resets it without breaking
// structural equality of pre- and post-reset nodes.
func TestInternShardReset(t *testing.T) {
	before := NewConst(0xABCD, 32)
	// Force enough distinct nodes through the table to trigger resets in
	// at least some shards.
	for i := uint64(0); i < internShardCap*internShardCount/8; i++ {
		NewConst(i, 48)
	}
	after := NewConst(0xABCD, 32)
	if !Equal(before, after) {
		t.Fatal("shard reset broke structural equality")
	}
	if before.Hash() != after.Hash() {
		t.Fatal("shard reset broke hash stability")
	}
	if InternedNodes() > internShardCap*internShardCount {
		t.Fatalf("intern table exceeded its cap: %d nodes", InternedNodes())
	}
}
