GO ?= go

.PHONY: build test race vet bench bench-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the S-series scheduler/solver + federated-round + wire
# transport benchmarks and updates BENCH_PR6.json ("current" section;
# "baseline" stays frozen — its v1-json wire modes are the pre-binary
# protocol the v2 transport is measured against). BENCH_PR2.json,
# BENCH_PR3.json and BENCH_PR4.json are the frozen earlier trajectories.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR6.json

# bench-short is the CI smoke variant: one iteration of every benchmark,
# no JSON output — it only proves the benchmarks still run.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
