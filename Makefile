GO ?= go

.PHONY: build test race vet bench bench-replicas bench-telemetry bench-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the S-series scheduler/solver + federated-round + wire
# transport benchmarks and updates BENCH_PR6.json ("current" section;
# "baseline" stays frozen — its v1-json wire modes are the pre-binary
# protocol the v2 transport is measured against). BENCH_PR2.json,
# BENCH_PR3.json and BENCH_PR4.json are the frozen earlier trajectories.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR6.json

# bench-replicas measures distributed round wall-clock on the generated
# 1k-node AS topology as the replica pool grows (1/2/4/8 workers, each
# behind a simulated 30ms WAN RTT) and updates BENCH_PR8.json. The
# acceptance criterion is monotone improvement 1→4 with ≥1.8× at 4.
# Rounds are deterministic and latency-dominated, so one round per leg
# (-benchtime 1x) measures cleanly.
bench-replicas:
	$(GO) run ./cmd/bench -bench '^BenchmarkReplicaScaling$$' -pkgs ./internal/dist -benchtime 1x -out BENCH_PR8.json

# bench-telemetry measures the cost of full instrumentation (metrics +
# per-RPC spans) against the nil no-op path on the line-3-dense
# federated round and updates BENCH_PR9.json. The acceptance criterion
# is instrumented within 5% of noop.
bench-telemetry:
	$(GO) run ./cmd/bench -bench '^BenchmarkTelemetryOverhead$$' -pkgs ./internal/dist -benchtime 300x -out BENCH_PR9.json

# bench-short is the CI smoke variant: one iteration of every benchmark,
# no JSON output — it only proves the benchmarks still run.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
