GO ?= go

.PHONY: build test race vet bench bench-short

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# bench runs the S-series scheduler/solver + federated-round benchmarks
# and updates BENCH_PR4.json ("current" section; "baseline" stays
# frozen — it holds the pre-COW-Shadow federated round). BENCH_PR2.json
# and BENCH_PR3.json are the frozen PR 2 / PR 3 trajectories.
bench:
	$(GO) run ./cmd/bench -out BENCH_PR4.json

# bench-short is the CI smoke variant: one iteration of every benchmark,
# no JSON output — it only proves the benchmarks still run.
bench-short:
	$(GO) test -run '^$$' -bench . -benchtime 1x ./...
