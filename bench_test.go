// Benchmarks regenerating the paper's evaluation, one per experiment ID
// in DESIGN.md §4. Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics carry the experiment's headline numbers (e.g.
// impact-% for E2/E3, unique-page fractions for E1) so `-bench` output is
// directly comparable with the paper's table in EXPERIMENTS.md.
package dice

import (
	"fmt"
	"testing"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/trace"
)

// benchScale keeps benchmark iterations fast while preserving workload
// shape; use cmd/experiments for full-scale runs.
func benchScale() core.Scale {
	return core.Scale{TableSize: 5000, UpdateCount: 250, ExploreRuns: 500, Seed: 1}
}

// BenchmarkFig1PathExploration (F1) exercises the concolic engine's
// predicate negation loop from Figure 1: one seed input, all feasible
// paths discovered by negating predicates one at a time.
func BenchmarkFig1PathExploration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		handler := func(rc *concolic.RunContext) any {
			x := rc.Input("x")
			n := 0
			if rc.Branch(concolic.Lt(x, concolic.Concrete(10, 32))) { // predicate #1
				n |= 1
			}
			if rc.Branch(concolic.Eq(concolic.And(x, concolic.Concrete(1, 32)), concolic.Concrete(1, 32))) { // predicate #2
				n |= 2
			}
			return n
		}
		eng := concolic.NewEngine(handler, concolic.Options{})
		eng.Var("x", 32, 4)
		rep := eng.Explore()
		if len(rep.Paths) != 4 {
			b.Fatalf("want 4 paths, got %d", len(rep.Paths))
		}
	}
}

// BenchmarkF2TopologySetup (F2) builds and converges the three-router
// topology every experiment runs on.
func BenchmarkF2TopologySetup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f, err := core.NewFig2(core.Fig2Options{})
		if err != nil {
			b.Fatal(err)
		}
		if f.Provider.RIB().Prefixes() == 0 {
			b.Fatal("no convergence")
		}
	}
}

// BenchmarkE1CheckpointMemory (E1, §4.1 memory) measures checkpoint page
// sharing and exploration clone overhead. Paper: checkpoint 3.45% unique
// pages; clones +36.93% mean / 39% max.
func BenchmarkE1CheckpointMemory(b *testing.B) {
	var last *core.E1Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunE1Memory(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(100*last.UniqueFraction, "ckpt-unique-%")
		b.ReportMetric(100*last.CloneOverheadMean, "clone-mean-%")
		b.ReportMetric(100*last.CloneOverheadMax, "clone-max-%")
	}
}

// BenchmarkE2UpdateThroughputWithExploration and ...Without (E2, §4.1 CPU
// full load) measure updates/s during table load. Paper: 13.9 vs 15.1
// updates/s (8% impact).
func BenchmarkE2UpdateThroughput(b *testing.B) {
	var last *core.ThroughputResult
	for i := 0; i < b.N; i++ {
		res, err := core.RunE2FullLoad(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.UpdatesPerSecWith, "upd/s-with")
		b.ReportMetric(last.UpdatesPerSecWithout, "upd/s-without")
		b.ReportMetric(last.ImpactPercent, "impact-%")
	}
}

// BenchmarkE3SteadyState (E3, §4.1 realistic scenario) measures paced
// update replay with exploration alongside. Paper: 0.272 vs 0.287
// updates/s — negligible impact.
func BenchmarkE3SteadyState(b *testing.B) {
	var last *core.ThroughputResult
	for i := 0; i < b.N; i++ {
		s := benchScale()
		s.UpdateCount = 100
		res, err := core.RunE3Steady(s, 500*time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(last.UpdatesPerSecWith, "upd/s-with")
		b.ReportMetric(last.UpdatesPerSecWithout, "upd/s-without")
		b.ReportMetric(last.ImpactPercent, "impact-%")
	}
}

// BenchmarkE4RouteLeakDetection (E4, §4.2) measures a full detection
// round against the misconfigured filter: exploration plus oracle. The
// paper's qualitative result — every installed victim inside the leak
// region is reported, the YouTube-analogue /22 included — is asserted.
func BenchmarkE4RouteLeakDetection(b *testing.B) {
	var findings int
	for i := 0; i < b.N; i++ {
		res, err := core.RunE4RouteLeak(benchScale(), core.BrokenCustomerFilter, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Findings) == 0 || !res.YouTubeDetected {
			b.Fatalf("detection failed: %d findings, youtube=%v", len(res.Findings), res.YouTubeDetected)
		}
		findings = len(res.Findings)
	}
	b.ReportMetric(float64(findings), "findings")
}

// benchFig2 builds the standard exploration substrate (broken filter,
// loaded table with victims) once for the scheduler benchmarks.
func benchFig2(b *testing.B) *core.Fig2 {
	b.Helper()
	f, err := core.NewFig2(core.Fig2Options{CustomerFilter: core.BrokenCustomerFilter})
	if err != nil {
		b.Fatal(err)
	}
	s := benchScale()
	cfg := trace.DefaultGenConfig()
	cfg.TableSize = s.TableSize
	cfg.Seed = s.Seed
	recs := append(trace.Generate(cfg), core.Victims()...)
	if _, err := f.LoadTable(recs); err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkS1WorkerScaling (S1) measures exploration-round throughput as
// the scheduler's worker pool grows: the frontier/scheduler split must
// let workers solve and execute concurrently instead of serializing on
// one engine mutex.
func BenchmarkS1WorkerScaling(b *testing.B) {
	f := benchFig2(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			var paths, queries int
			for i := 0; i < b.N; i++ {
				d := core.New(f.Provider, core.Options{
					Engine: concolic.Options{
						MaxRuns: benchScale().ExploreRuns,
						Workers: workers,
					},
				})
				res, err := d.ExplorePeer(core.NodeCustomer)
				if err != nil {
					b.Fatal(err)
				}
				paths = len(res.Report.Paths)
				queries = res.Report.SolverCalls
			}
			b.ReportMetric(float64(paths), "paths")
			b.ReportMetric(float64(queries), "solver-calls")
		})
	}
}

// BenchmarkS2WarmVsColdState (S2) measures what cross-round ExploreState
// buys the continuous online mode: a cold round pays the whole
// exploration; a warm round on the same seed skips every known path and
// negation. solver-calls is the headline metric — warm must be ~0.
func BenchmarkS2WarmVsColdState(b *testing.B) {
	f := benchFig2(b)
	engine := concolic.Options{MaxRuns: benchScale().ExploreRuns}

	b.Run("cold", func(b *testing.B) {
		var calls int
		for i := 0; i < b.N; i++ {
			// Fresh DiCE per round: no memory of prior rounds.
			res, err := core.New(f.Provider, core.Options{Engine: engine}).ExplorePeer(core.NodeCustomer)
			if err != nil {
				b.Fatal(err)
			}
			calls = res.Report.SolverCalls + res.Report.CacheHits
		}
		b.ReportMetric(float64(calls), "solver-calls")
	})

	b.Run("warm", func(b *testing.B) {
		d := core.New(f.Provider, core.Options{Engine: engine, ReuseState: true})
		if _, err := d.ExplorePeer(core.NodeCustomer); err != nil {
			b.Fatal(err) // priming round (the cold one)
		}
		b.ResetTimer()
		var calls, skipped int
		for i := 0; i < b.N; i++ {
			res, err := d.ExplorePeer(core.NodeCustomer)
			if err != nil {
				b.Fatal(err)
			}
			calls = res.Report.SolverCalls + res.Report.CacheHits
			skipped = res.Report.SkippedNegations
		}
		b.ReportMetric(float64(calls), "solver-calls")
		b.ReportMetric(float64(skipped), "skipped-negations")
	})
}

// BenchmarkS3NegationThroughput (S3) measures the negation hot path end
// to end: per-branch dedup-key construction, frontier folding, and the
// solver queries for every suffix negation of a deep path condition. The
// handler records a long chain of masked-bit branches — the router shape
// — so key construction and solving dominate the round. allocs/op is the
// headline metric: it counts key construction + solving garbage per
// exploration round (tracked in BENCH_PR2.json from PR 2 on).
func BenchmarkS3NegationThroughput(b *testing.B) {
	const depth = 24
	handler := func(rc *concolic.RunContext) any {
		x := rc.Input("x")
		y := rc.Input("y")
		n := 0
		for i := 0; i < depth; i++ {
			bit := concolic.Eq(
				concolic.And(concolic.Shr(x, concolic.Concrete(uint64(i%16), 32)), concolic.Concrete(1, 32)),
				concolic.Concrete(1, 32))
			if rc.Branch(bit) {
				n++
			}
		}
		if rc.Branch(concolic.Lt(y, concolic.Concrete(100, 16))) {
			n++
		}
		return n
	}
	b.ReportAllocs()
	var queries, paths int
	for i := 0; i < b.N; i++ {
		eng := concolic.NewEngine(handler, concolic.Options{MaxRuns: 200})
		eng.Var("x", 32, 0)
		eng.Var("y", 16, 0)
		rep := eng.Explore()
		queries = rep.SolverCalls + rep.CacheHits
		paths = len(rep.Paths)
	}
	b.ReportMetric(float64(queries), "queries")
	b.ReportMetric(float64(paths), "paths")
}

// BenchmarkA1SymbolicMarking (A1 ablation, §3.2) compares field-granular
// symbolic marking with raw-byte marking.
func BenchmarkA1SymbolicMarking(b *testing.B) {
	var last *core.A1Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunA1SymbolicMarking(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(100*last.FieldValidRatio, "field-valid-%")
		b.ReportMetric(100*last.RawValidRatio, "raw-valid-%")
		b.ReportMetric(float64(last.FieldPolicyPaths), "field-paths")
		b.ReportMetric(float64(last.RawPolicyPaths), "raw-paths")
	}
}

// BenchmarkA2CheckpointVsReplay (A2 ablation, §2.3) compares reaching an
// exploration-ready state by checkpointing vs replaying history.
func BenchmarkA2CheckpointVsReplay(b *testing.B) {
	var last *core.A2Result
	for i := 0; i < b.N; i++ {
		res, err := core.RunA2CheckpointVsReplay(5000, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		b.ReportMetric(float64(last.CheckpointTime.Microseconds()), "ckpt-µs")
		b.ReportMetric(float64(last.ReplayTime.Microseconds()), "replay-µs")
		b.ReportMetric(last.SpeedupFactor, "speedup-x")
	}
}

// BenchmarkFederatedRound (S4) measures one federated exploration round
// — per-node checkpoint/clone concolic exploration sharded over a shared
// worker pool, plus cross-node witness propagation and oracles — on the
// two built-in shapes: the 3-node line and the 5-node mesh (the mesh
// explores 20 peerings vs the line's 4 over the same pool). violations
// and peerings are the headline custom metrics.
func BenchmarkFederatedRound(b *testing.B) {
	shapes := []struct {
		name string
		topo func() *core.Topology
	}{
		{"line-3", func() *core.Topology { return core.LineTopology(3) }},
		{"mesh-5", func() *core.Topology { return core.MeshTopology(5) }},
		// line-3-dense: 256 extra /24s per node, so every shadow copies
		// ~2300 routes — the table-scale regime where Fabric.Shadow's
		// per-witness cost dominates and COW sharing pays.
		{"line-3-dense", func() *core.Topology { return core.DenseLineTopology(3, 256) }},
	}
	for _, sh := range shapes {
		b.Run(sh.name, func(b *testing.B) {
			// Fabric build + convergence is setup, not the round under
			// measurement; cold rounds (no ReuseState) are identical, so
			// one fabric serves every iteration.
			fe, err := core.NewFederatedExperiment(sh.topo(), core.FederatedOptions{
				Engine:  concolic.Options{MaxRuns: 200},
				Workers: 4,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var peerings, violations, runs int
			for i := 0; i < b.N; i++ {
				res, err := fe.Round()
				if err != nil {
					b.Fatal(err)
				}
				peerings, violations, runs = 0, len(res.Violations), 0
				for _, tr := range res.Targets {
					if tr.Err == nil {
						peerings++
						runs += tr.Result.Report.Runs
					}
				}
			}
			b.ReportMetric(float64(peerings), "peerings")
			b.ReportMetric(float64(runs), "runs")
			b.ReportMetric(float64(violations), "violations")
		})
	}
}
