module dice

go 1.22
