// Package dice is a Go reproduction of "Toward Online Testing of
// Federated and Heterogeneous Distributed Systems" (Canini et al., USENIX
// 2011): DiCE, online testing of deployed distributed systems by concolic
// exploration from live checkpoints, with the paper's BGP/BIRD case study
// rebuilt on a pure-Go substrate.
//
// The implementation lives under internal/ (see DESIGN.md for the system
// inventory) with binaries under cmd/ and runnable walkthroughs under
// examples/. The root package only anchors the module and hosts the
// benchmark harness (bench_test.go) that regenerates every number in the
// paper's evaluation.
package dice
