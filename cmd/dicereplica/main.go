// Command dicereplica is a stateless DiCE exploration replica: it
// administers no node and holds no fabric, but serves explore_checkpoint
// over the distributed wire protocol — a coordinator ships it a node's
// checkpointed state, config, and scenario seed, and the replica runs
// the identical per-target exploration pipeline the node's own agent
// would, returning findings, witnesses and frontier memory. A pool of
// replicas (dice -distributed -replica-addrs ...) scales a round's
// exploration phase horizontally; see internal/dist and
// examples/asgen/README.md.
//
//	dicereplica -listen 127.0.0.1:7421
//
// Replicas are interchangeable: they carry no per-node identity, so one
// process can serve shards from any node of any topology, and killing
// one mid-round only moves its shard to a surviving replica.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dice/internal/dist"
	"dice/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dicereplica: ")

	var (
		listen   = flag.String("listen", "127.0.0.1:7421", "TCP address to serve the wire protocol on")
		maxProto = flag.Int("max-proto", 0, "highest wire protocol version to negotiate (0 = latest; 1 forces the v1 JSON codec)")
		grace    = flag.Duration("shutdown-grace", 5*time.Second, "on SIGTERM/SIGINT: how long to drain in-flight requests before force-closing connections")
		metrics  = flag.String("metrics-addr", "", "TCP address for the telemetry endpoint (/metrics, /healthz, /debug/pprof/); empty disables it")
	)
	flag.Parse()

	if *maxProto < 0 || *maxProto > dist.ProtoLatest {
		log.Fatalf("-max-proto %d: supported versions are 1..%d (or 0 for latest)", *maxProto, dist.ProtoLatest)
	}
	replica := dist.NewReplica()
	replica.MaxProtoVersion = *maxProto

	// Telemetry endpoint, mirroring dicenode: exposition + drain-aware
	// readiness + pprof.
	if *metrics != "" {
		reg := telemetry.NewRegistry()
		replica.EnableTelemetry(reg)
		health := telemetry.NewHealth()
		health.AddReadiness("drain", func() error {
			if replica.Draining() {
				return errors.New("draining")
			}
			return nil
		})
		mln, err := net.Listen("tcp", *metrics)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry on http://%s/metrics", mln.Addr())
		go func() {
			srv := telemetry.NewServer(reg, health)
			if err := srv.Serve(mln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("exploration replica listening on %s", ln.Addr())

	// Graceful shutdown, exactly as dicenode: close the listener first,
	// then drain in-flight requests within the grace period.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		log.Printf("%v: draining (grace %v)", sig, *grace)
		ln.Close()
		replica.Shutdown(*grace)
		os.Exit(0)
	}()

	if err := replica.ListenAndServe(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	// Listener closed by the signal handler: park until the drain exits.
	select {}
}
