// Command dicenode is the DiCE node agent: it administers ONE node of a
// federated topology and serves the distributed wire protocol for it —
// checkpoint snapshots, concolic exploration of its own policy surface,
// shadow clones for witness propagation, and the narrow cross-domain
// oracle queries. A coordinator (dice -distributed) orchestrates a fleet
// of these into federated rounds; see internal/dist and
// examples/distributed/README.md.
//
// Each administrative domain runs its own agent:
//
//	dicenode -topology topo.json -node provider -listen 127.0.0.1:7411
//
// Agents negotiate the wire protocol per connection (the latest binary
// codec, with pipelining and witness batching, by default); -max-proto
// pins an agent to an older version for mixed-version fleets.
//
// The agent instantiates the topology locally (deterministic
// convergence gives every agent the identical fabric picture) but
// exposes only the named node over the wire.
package main

import (
	"errors"
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dice/internal/core"
	"dice/internal/dist"
	"dice/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dicenode: ")

	var (
		topologyFile = flag.String("topology", "", "JSON multi-AS topology file (required)")
		node         = flag.String("node", "", "topology node this agent administers (required)")
		listen       = flag.String("listen", "127.0.0.1:7411", "TCP address to serve the wire protocol on")
		maxProto     = flag.Int("max-proto", 0, "highest wire protocol version to negotiate (0 = latest; 1 forces the v1 JSON codec)")
		grace        = flag.Duration("shutdown-grace", 5*time.Second, "on SIGTERM/SIGINT: how long to drain in-flight requests before force-closing connections")
		metricsAddr  = flag.String("metrics-addr", "", "TCP address for the telemetry endpoint (/metrics, /healthz, /debug/pprof/); empty disables it")
	)
	flag.Parse()

	if *topologyFile == "" || *node == "" {
		log.Fatal("both -topology and -node are required")
	}
	if *maxProto < 0 || *maxProto > dist.ProtoLatest {
		log.Fatalf("-max-proto %d: supported versions are 1..%d (or 0 for latest)", *maxProto, dist.ProtoLatest)
	}
	topo, err := core.LoadTopology(*topologyFile)
	if err != nil {
		log.Fatal(err)
	}
	agent, err := dist.NewAgent(topo, *node)
	if err != nil {
		log.Fatal(err)
	}
	agent.MaxProtoVersion = *maxProto

	// Telemetry endpoint: metrics exposition, drain-aware readiness, and
	// pprof. Readiness flips to 503 the moment the drain starts, so a
	// fleet manager stops routing to an agent that is on its way out
	// while its in-flight requests still complete.
	if *metricsAddr != "" {
		reg := telemetry.NewRegistry()
		agent.EnableTelemetry(reg)
		health := telemetry.NewHealth()
		health.AddReadiness("drain", func() error {
			if agent.Draining() {
				return errors.New("draining")
			}
			return nil
		})
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("telemetry on http://%s/metrics", mln.Addr())
		go func() {
			srv := telemetry.NewServer(reg, health)
			if err := srv.Serve(mln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("agent for node %q of topology %q listening on %s", *node, topo.Name, ln.Addr())

	// Graceful shutdown: close the listener so no new connections race
	// in, then drain — every request already read gets its answer before
	// its connection closes, and stragglers are force-closed once the
	// grace period expires.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		sig := <-sigc
		log.Printf("%v: draining (grace %v)", sig, *grace)
		ln.Close()
		agent.Shutdown(*grace)
		os.Exit(0)
	}()

	if err := agent.ListenAndServe(ln); err != nil && !errors.Is(err, net.ErrClosed) {
		log.Fatal(err)
	}
	// Listener closed by the signal handler: park until the drain exits.
	select {}
}
