// Command dice runs one DiCE online-testing round against the paper's
// Figure 2 topology: it brings up Customer/Provider/Internet, loads a
// routing table into the DiCE-enabled provider, explores the provider's
// behavior under synthesized customer announcements, and reports any
// route leaks / prefix hijacks the misconfigured policy admits.
//
// Usage:
//
//	dice -filter broken -table 20000 -runs 2000
//	dice -filter correct                 # expect no findings
//	dice -filter-file my_filter.conf     # custom customer_in filter
//	dice -trace trace.mrtl               # load a tracegen file instead
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/filter"
	"dice/internal/netaddr"
	"dice/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dice: ")

	var (
		filterKind = flag.String("filter", "broken", "customer filter: broken|correct|missing")
		filterFile = flag.String("filter-file", "", "file with a custom 'filter customer_in { ... }'")
		traceFile  = flag.String("trace", "", "MRT-lite trace to load (default: synthetic)")
		tableSize  = flag.Int("table", 20000, "synthetic table size when no -trace given")
		runs       = flag.Int("runs", 2000, "concolic run budget")
		workers    = flag.Int("workers", 1, "parallel exploration workers")
		strategy   = flag.String("strategy", "generational", "search strategy: generational|dfs|bfs")
		anycastStr = flag.String("anycast", "", "comma-free anycast prefix to suppress as FP (repeat not supported; use config for more)")
		verbose    = flag.Bool("v", false, "print every explored path")
		audit      = flag.Bool("audit", false, "audit the filter for dead clauses instead of exploring the router")
		openFSM    = flag.Bool("open", false, "also explore OPEN-message (session FSM) handling")
	)
	flag.Parse()

	filterSrc := ""
	switch {
	case *filterFile != "":
		b, err := os.ReadFile(*filterFile)
		if err != nil {
			log.Fatal(err)
		}
		filterSrc = string(b)
	case *filterKind == "broken":
		filterSrc = core.BrokenCustomerFilter
	case *filterKind == "correct":
		filterSrc = core.CorrectCustomerFilter
	case *filterKind == "missing":
		filterSrc = core.MissingCustomerFilter
	default:
		log.Fatalf("unknown -filter %q", *filterKind)
	}

	if *audit {
		f, err := filter.Parse(filterSrc)
		if err != nil {
			log.Fatal(err)
		}
		rep := core.AuditFilter(f, *runs)
		fmt.Print(rep)
		if len(rep.DeadTrue)+len(rep.DeadFalse) == 0 {
			fmt.Println("no dead clauses or redundant guards found")
		}
		return
	}

	var anycast []netaddr.Prefix
	if *anycastStr != "" {
		p, err := netaddr.ParsePrefix(*anycastStr)
		if err != nil {
			log.Fatal(err)
		}
		anycast = append(anycast, p)
	}

	fig, err := core.NewFig2(core.Fig2Options{CustomerFilter: filterSrc, Anycast: anycast})
	if err != nil {
		log.Fatal(err)
	}

	var records []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		records, err = trace.Read(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := trace.DefaultGenConfig()
		cfg.TableSize = *tableSize
		cfg.UpdateCount = 0
		records = trace.Generate(cfg)
	}
	records = append(records, core.Victims()...)

	start := time.Now()
	n, err := fig.LoadTable(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d prefixes into the provider in %v (RIB: %d prefixes)\n",
		n, time.Since(start).Round(time.Millisecond), fig.Provider.RIB().Prefixes())

	var strat concolic.Strategy
	switch *strategy {
	case "generational":
		strat = concolic.Generational
	case "dfs":
		strat = concolic.DFS
	case "bfs":
		strat = concolic.BFS
	default:
		log.Fatalf("unknown -strategy %q", *strategy)
	}

	d := core.New(fig.Provider, core.Options{
		Engine: concolic.Options{
			MaxRuns:  *runs,
			Workers:  *workers,
			Strategy: strat,
		},
	})
	res, err := d.ExplorePeer(core.NodeCustomer)
	if err != nil {
		log.Fatal(err)
	}

	rep := res.Report
	fmt.Printf("\nexploration: %d runs, %d distinct paths, %d branches seen, %v\n",
		rep.Runs, len(rep.Paths), rep.BranchesSeen, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("solver: %d queries (%d sat, %d unsat)\n", rep.SolverCalls, rep.SolverSat, rep.SolverUnsat)
	fmt.Printf("isolation: %d messages produced by clones, all intercepted\n", res.CapturedMessages)

	if *verbose {
		for _, p := range rep.Paths {
			fmt.Printf("  path %d: env=%v\n", p.Seq, p.Env)
		}
	}

	if len(res.Findings) == 0 {
		fmt.Println("\nno potential hijacks found")
	} else {
		fmt.Printf("\n%d potential hijack(s):\n", len(res.Findings))
		for _, fd := range res.Findings {
			fmt.Printf("  %s\n", fd)
		}
	}
	if res.FalsePositivesFiltered > 0 {
		fmt.Printf("%d anycast false positive(s) suppressed\n", res.FalsePositivesFiltered)
	}

	if *openFSM {
		fmt.Println()
		openRes, err := d.ExploreOpen(core.NodeCustomer)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(openRes)
	}
}
