// Command dice runs DiCE online-testing rounds against the paper's
// Figure 2 topology: it brings up Customer/Provider/Internet, loads a
// routing table into the DiCE-enabled provider, explores the provider's
// behavior under synthesized customer messages, and reports any faults
// the scenario oracles find (route leaks / prefix hijacks for "update",
// FSM outcomes for "open", reachability blackholes for "withdraw").
//
// Usage:
//
//	dice -filter broken -table 20000 -runs 2000
//	dice -filter correct                 # expect no findings
//	dice -scenario update,open,withdraw  # explore several surfaces
//	dice -rounds 3                       # online mode: warm rounds skip known paths
//	dice -list-scenarios                 # show the scenario registry
//	dice -filter-file my_filter.conf     # custom customer_in filter
//	dice -trace trace.mrtl               # load a tracegen file instead
//
// Federated mode explores a multi-AS topology loaded from a JSON file
// (per-node concolic rounds, cross-node witness propagation, cross-node
// oracles — see examples/routeleak/README.md for the file format):
//
//	dice -scenario routeleak -topology examples/routeleak/topo.json
//	dice -topology topo.json -rounds 3   # warm per-node state across rounds
//
// Cross-node oracles can be declared in the property DSL instead of
// (or on top of) the built-in Go oracles — .prop files load from the
// topology's "properties" section or the -properties flag, and a
// declared property replaces the builtin of the same kind (see
// examples/properties/README.md and ARCHITECTURE.md §9):
//
//	dice -topology topo.json -properties leak.prop,stale.prop
//
// Distributed mode runs the same federated rounds against node agents
// in separate processes (cmd/dicenode), one per administrative domain,
// over the dist wire protocol (see examples/distributed/README.md):
//
//	dice -topology topo.json -distributed 127.0.0.1:7411,127.0.0.1:7412,127.0.0.1:7413
//	dice -topology topo.json -distributed ... -wire v1   # force the v1 JSON codec
//	dice -topology topo.json -distributed ... -rpc-timeout 10s -dial-timeout 2s
//
// Distributed rounds are fault tolerant: every RPC is bounded by
// -rpc-timeout, broken connections are re-dialed with capped backoff,
// and a node whose agent stays unreachable degrades to an in-process
// replacement (reported after the run) without changing the findings.
//
// Distributed exploration can be offloaded to an elastic pool of
// stateless replicas (cmd/dicereplica) over the checkpoint RPC — the
// coordinator ships each target's checkpointed state and scenario seed,
// and shards are work-stolen across the pool:
//
//	dice -topology topo.json -distributed ... -replicas 4
//	dice -topology topo.json -distributed ... -replica-addrs 127.0.0.1:7421,127.0.0.1:7422
//
// AS-relationship topologies (customer/provider/peer tiers with
// Gao-Rexford export policies, 8..10000 nodes, deterministic by seed)
// are generated with -asgen (see examples/asgen/README.md):
//
//	dice -asgen 200 -asgen-seed 7 -runs 50       # generate and explore
//	dice -asgen 1000 -asgen-out topo.json        # write for dicenode fleets
//
// The regression harness replays a recorded trace through the topology,
// minimizes every violating witness, and diffs the round's finding set
// against a committed golden snapshot (non-zero exit on mismatch — see
// examples/replay/README.md):
//
//	dice -topology topo.json -replay trace.mrtl -minimize -golden findings.golden
//	dice -topology topo.json -minimize -golden findings.golden -update-golden
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"strings"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
	"dice/internal/dist"
	"dice/internal/filter"
	"dice/internal/minimize"
	"dice/internal/netaddr"
	"dice/internal/regress"
	"dice/internal/telemetry"
	"dice/internal/topo"
	"dice/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("dice: ")

	var (
		filterKind    = flag.String("filter", "broken", "customer filter: broken|correct|missing")
		filterFile    = flag.String("filter-file", "", "file with a custom 'filter customer_in { ... }'")
		traceFile     = flag.String("trace", "", "MRT-lite trace to load (default: synthetic)")
		tableSize     = flag.Int("table", 20000, "synthetic table size when no -trace given")
		runs          = flag.Int("runs", 2000, "concolic run budget")
		workers       = flag.Int("workers", 1, "parallel exploration workers")
		strategy      = flag.String("strategy", "generational", "search strategy: generational|dfs|bfs")
		scenarioFlag  = flag.String("scenario", "update", "comma-separated scenarios to explore (see -list-scenarios), or 'all'")
		rounds        = flag.Int("rounds", 1, "exploration rounds per scenario; >1 reuses cross-round state (online mode)")
		anycastStr    = flag.String("anycast", "", "comma-free anycast prefix to suppress as FP (repeat not supported; use config for more)")
		verbose       = flag.Bool("v", false, "print every explored path")
		audit         = flag.Bool("audit", false, "audit the filter for dead clauses instead of exploring the router")
		openFSM       = flag.Bool("open", false, "also explore OPEN-message (session FSM) handling (same as adding 'open' to -scenario)")
		listScenarios = flag.Bool("list-scenarios", false, "list registered scenarios and exit")
		topologyFile  = flag.String("topology", "", "federated mode: JSON multi-AS topology file to explore instead of the Fig. 2 testbed")
		propSteps     = flag.Int("propagation-steps", 0, "federated mode: max shadow propagation steps per witness (0 = 4096)")
		propsFlag     = flag.String("properties", "", "federated mode: comma-separated .prop files with declarative cross-node properties (merged over the built-in oracles by kind)")
		distributed   = flag.String("distributed", "", "distributed mode: comma-separated dicenode agent addresses (requires -topology; one agent per node)")
		replicasN     = flag.Int("replicas", 0, "distributed mode: offload exploration to this many in-process replicas (an elastic pool over the checkpoint RPC)")
		replicaAddrs  = flag.String("replica-addrs", "", "distributed mode: comma-separated dicereplica addresses to offload exploration to")
		asgenNodes    = flag.Int("asgen", 0, "generate an AS-relationship topology with this many nodes (customer/provider/peer tiers, Gao-Rexford export policies) and explore it as the federated topology")
		asgenSeed     = flag.Int64("asgen-seed", 1, "asgen: generator seed (the same seed always yields the identical topology)")
		asgenClauses  = flag.Int("asgen-clauses", 0, "asgen: extra policy clauses per customer-import filter (deepens the concolic search space)")
		asgenOut      = flag.String("asgen-out", "", "asgen: write the generated topology JSON here and exit (feed it to -topology and dicenode)")
		wireVersion   = flag.String("wire", "auto", "distributed mode wire protocol: auto (negotiate, prefer the latest binary codec) or v1 (force the JSON codec)")
		rpcTimeout    = flag.Duration("rpc-timeout", 30*time.Second, "distributed mode: per-RPC deadline (0 = none); a timed-out call retries and may trigger reconnection")
		dialTimeout   = flag.Duration("dial-timeout", 5*time.Second, "distributed mode: how long to retry dialing each agent address")
		replayFile    = flag.String("replay", "", "federated mode: replay this recorded trace into the fabric before rounds run (see -replay-ingress)")
		replayIngress = flag.String("replay-ingress", "", "replay ingress as 'node<-peer' (default: the topology's first explore target)")
		minimizeFlag  = flag.Bool("minimize", false, "federated mode: delta-debug every violating witness to a minimal still-failing announcement")
		minimizeBudg  = flag.Int("minimize-budget", 0, "candidate re-injections per witness under -minimize (0 = 256)")
		goldenFile    = flag.String("golden", "", "federated mode: diff the last round's finding snapshot against this golden file; exit non-zero on mismatch")
		updateGolden  = flag.Bool("update-golden", false, "rewrite -golden from the last round instead of comparing")
		metricsAddr   = flag.String("metrics-addr", "", "federated/distributed mode: TCP address for the telemetry endpoint (/metrics, /healthz, /debug/pprof/); empty disables it")
		traceOut      = flag.String("trace-out", "", "federated/distributed mode: write a Chrome trace_event JSON of the run's rounds here (open in chrome://tracing or Perfetto)")
	)
	flag.Parse()

	if *listScenarios {
		for _, name := range core.ScenarioNames() {
			sc, _ := core.LookupScenario(name)
			fmt.Printf("  %-10s %s\n", name, sc.Description())
		}
		return
	}

	scenarios, err := resolveScenarios(*scenarioFlag, *openFSM)
	if err != nil {
		log.Fatal(err)
	}

	strat, err := parseStrategy(*strategy)
	if err != nil {
		log.Fatal(err)
	}

	if *rounds < 1 {
		log.Fatalf("-rounds %d: need at least one round", *rounds)
	}
	if *distributed != "" && *topologyFile == "" {
		log.Fatal("-distributed requires -topology (the coordinator resolves targets and links from the topology file)")
	}
	if *wireVersion != "auto" && *wireVersion != "v1" {
		log.Fatalf("-wire %q: want auto or v1", *wireVersion)
	}
	if (*replicasN > 0 || *replicaAddrs != "") && *distributed == "" {
		log.Fatal("-replicas and -replica-addrs require -distributed (replicas offload the agents' exploration phase)")
	}
	if *asgenNodes > 0 && *topologyFile != "" {
		log.Fatal("-asgen and -topology are exclusive (asgen generates the topology)")
	}
	if (*asgenOut != "" || *asgenClauses != 0) && *asgenNodes == 0 {
		log.Fatal("-asgen-out and -asgen-clauses require -asgen (the generator they parameterize)")
	}
	var genTopo *core.Topology
	if *asgenNodes > 0 {
		t, layout, err := topo.Generate(topo.Spec{
			Seed:          *asgenSeed,
			Nodes:         *asgenNodes,
			PolicyClauses: *asgenClauses,
		})
		if err != nil {
			log.Fatal(err)
		}
		if *asgenOut != "" {
			data, err := topo.EncodeJSON(t)
			if err != nil {
				log.Fatal(err)
			}
			if err := os.WriteFile(*asgenOut, data, 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s: topology %q, %d nodes (%d core), %d edges, %d explore targets\n",
				*asgenOut, t.Name, len(t.Nodes), len(layout.Core), len(t.Edges), len(t.Explore))
			return
		}
		genTopo = t
	}
	if *topologyFile == "" && genTopo == nil {
		for name, set := range map[string]bool{
			"-properties":      *propsFlag != "",
			"-replay":          *replayFile != "",
			"-replay-ingress":  *replayIngress != "",
			"-minimize":        *minimizeFlag,
			"-minimize-budget": *minimizeBudg != 0,
			"-golden":          *goldenFile != "",
			"-metrics-addr":    *metricsAddr != "",
			"-trace-out":       *traceOut != "",
		} {
			if set {
				log.Fatalf("%s requires -topology (it only applies to federated/distributed runs)", name)
			}
		}
	}
	if *updateGolden && *goldenFile == "" {
		log.Fatal("-update-golden requires -golden (the file to rewrite)")
	}
	if *replayIngress != "" && *replayFile == "" {
		log.Fatal("-replay-ingress requires -replay (the trace to feed through that ingress)")
	}
	if *minimizeBudg != 0 && !*minimizeFlag {
		log.Fatal("-minimize-budget requires -minimize (the loop it budgets)")
	}
	if *topologyFile != "" || genTopo != nil {
		// The default scenario for targets that don't name one: what the
		// user asked for with an explicit -scenario, else the federated
		// workhorse (routeleak — FederatedOptions' own default).
		defaultScenario := ""
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "scenario" {
				defaultScenario = scenarios[0]
			}
		})
		if defaultScenario != "" && len(scenarios) > 1 {
			log.Printf("federated mode uses one default scenario; taking %q (topology explore entries may still name others)", defaultScenario)
		}
		var properties []string
		for _, path := range strings.Split(*propsFlag, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			b, err := os.ReadFile(path)
			if err != nil {
				log.Fatal(err)
			}
			properties = append(properties, string(b))
		}
		run := fedRun{
			topoPath:        *topologyFile,
			topo:            genTopo,
			defaultScenario: defaultScenario,
			properties:      properties,
			engOpts: concolic.Options{
				MaxRuns:  *runs,
				Strategy: strat,
			},
			workers:        *workers,
			rounds:         *rounds,
			propSteps:      *propSteps,
			verbose:        *verbose,
			minimize:       *minimizeFlag,
			minimizeBudget: *minimizeBudg,
			replayFile:     *replayFile,
			replayIngress:  *replayIngress,
			goldenFile:     *goldenFile,
			updateGolden:   *updateGolden,
			wire:           *wireVersion,
			rpcTimeout:     *rpcTimeout,
			dialTimeout:    *dialTimeout,
			replicas:       *replicasN,
			replicaAddrs:   *replicaAddrs,
			metricsAddr:    *metricsAddr,
			traceOut:       *traceOut,
		}
		if *distributed != "" {
			runDistributed(run, *distributed)
		} else {
			runFederated(run)
		}
		return
	}

	filterSrc := ""
	switch {
	case *filterFile != "":
		b, err := os.ReadFile(*filterFile)
		if err != nil {
			log.Fatal(err)
		}
		filterSrc = string(b)
	case *filterKind == "broken":
		filterSrc = core.BrokenCustomerFilter
	case *filterKind == "correct":
		filterSrc = core.CorrectCustomerFilter
	case *filterKind == "missing":
		filterSrc = core.MissingCustomerFilter
	default:
		log.Fatalf("unknown -filter %q", *filterKind)
	}

	if *audit {
		f, err := filter.Parse(filterSrc)
		if err != nil {
			log.Fatal(err)
		}
		rep := core.AuditFilter(f, *runs)
		fmt.Print(rep)
		if len(rep.DeadTrue)+len(rep.DeadFalse) == 0 {
			fmt.Println("no dead clauses or redundant guards found")
		}
		return
	}

	var anycast []netaddr.Prefix
	if *anycastStr != "" {
		p, err := netaddr.ParsePrefix(*anycastStr)
		if err != nil {
			log.Fatal(err)
		}
		anycast = append(anycast, p)
	}

	fig, err := core.NewFig2(core.Fig2Options{CustomerFilter: filterSrc, Anycast: anycast})
	if err != nil {
		log.Fatal(err)
	}

	var records []trace.Record
	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			log.Fatal(err)
		}
		records, err = trace.Read(bufio.NewReaderSize(f, 1<<20))
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
	} else {
		cfg := trace.DefaultGenConfig()
		cfg.TableSize = *tableSize
		cfg.UpdateCount = 0
		records = trace.Generate(cfg)
	}
	records = append(records, core.Victims()...)

	start := time.Now()
	n, err := fig.LoadTable(records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d prefixes into the provider in %v (RIB: %d prefixes)\n",
		n, time.Since(start).Round(time.Millisecond), fig.Provider.RIB().Prefixes())

	d := core.New(fig.Provider, core.Options{
		Engine: concolic.Options{
			MaxRuns:  *runs,
			Workers:  *workers,
			Strategy: strat,
		},
		ReuseState: *rounds > 1,
	})

	for round := 1; round <= *rounds; round++ {
		if *rounds > 1 {
			fmt.Printf("\n======== round %d/%d ========\n", round, *rounds)
		}
		for _, name := range scenarios {
			res, err := d.ExploreScenario(name, core.NodeCustomer)
			if err != nil {
				log.Fatal(err)
			}
			printResult(name, res, *verbose)
		}
	}

	if *rounds > 1 {
		fmt.Println()
		for _, name := range scenarios {
			if st := d.State(name, core.NodeCustomer); st != nil {
				s := st.Stats()
				fmt.Printf("%s state after %d rounds: %d paths, %d negations attempted, solver cache %d hits / %d misses\n",
					name, s.Rounds, s.Paths, s.Negations, s.CacheHits, s.CacheMisses)
			}
		}
	}
}

// parseStrategy maps the -strategy flag to the engine constant.
func parseStrategy(name string) (concolic.Strategy, error) {
	switch name {
	case "generational":
		return concolic.Generational, nil
	case "dfs":
		return concolic.DFS, nil
	case "bfs":
		return concolic.BFS, nil
	}
	return 0, fmt.Errorf("unknown -strategy %q", name)
}

// fedRun carries the federated/distributed mode configuration: the
// exploration knobs plus the regression-harness additions (trace
// replay, witness minimization, golden-file comparison).
type fedRun struct {
	topoPath        string
	topo            *core.Topology // pre-generated (-asgen); topoPath unused when set
	defaultScenario string
	properties      []string // -properties file contents (merged over the builtins by kind)
	engOpts         concolic.Options
	workers         int
	rounds          int
	propSteps       int
	verbose         bool
	minimize        bool
	minimizeBudget  int
	replayFile      string
	replayIngress   string
	goldenFile      string
	updateGolden    bool
	wire            string
	rpcTimeout      time.Duration
	dialTimeout     time.Duration
	replicas        int
	replicaAddrs    string
	metricsAddr     string
	traceOut        string
}

// telemetrySetup builds the run's registry and tracer (nil when the
// flags are off) and serves the HTTP endpoint when -metrics-addr is
// set. The coordinator process never drains, so its readiness check is
// unconditional.
func (r fedRun) telemetrySetup() (*telemetry.Registry, *telemetry.Tracer) {
	var reg *telemetry.Registry
	if r.metricsAddr != "" {
		reg = telemetry.NewRegistry()
		health := telemetry.NewHealth()
		mln, err := net.Listen("tcp", r.metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("telemetry on http://%s/metrics\n", mln.Addr())
		go func() {
			srv := telemetry.NewServer(reg, health)
			if err := srv.Serve(mln); err != nil && !errors.Is(err, net.ErrClosed) {
				log.Printf("telemetry server: %v", err)
			}
		}()
	}
	var tracer *telemetry.Tracer
	if r.traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	return reg, tracer
}

// writeTrace dumps the collected spans to -trace-out.
func (r fedRun) writeTrace(tracer *telemetry.Tracer) {
	if tracer == nil {
		return
	}
	if err := tracer.WriteFile(r.traceOut); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d span(s))\n", r.traceOut, tracer.Len())
}

// loadTopo resolves the run's topology: the pre-generated one (-asgen)
// or the -topology file.
func (r fedRun) loadTopo() (*core.Topology, error) {
	if r.topo != nil {
		return r.topo, nil
	}
	return core.LoadTopology(r.topoPath)
}

func (r fedRun) options() core.FederatedOptions {
	return core.FederatedOptions{
		Engine:              r.engOpts,
		Workers:             r.workers,
		DefaultScenario:     r.defaultScenario,
		MaxPropagationSteps: r.propSteps,
		ReuseState:          r.rounds > 1,
		Minimize:            r.minimize,
		MinimizeBudget:      r.minimizeBudget,
		Properties:          r.properties,
	}
}

// ingress resolves the -replay-ingress flag ("node<-peer") against the
// topology, defaulting to the first resolved explore target — the
// peering the recorded history is assumed captured on.
func (r fedRun) ingress(topo *core.Topology) (node, peer string, err error) {
	if r.replayIngress != "" {
		parts := strings.SplitN(r.replayIngress, "<-", 2)
		if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
			return "", "", fmt.Errorf("-replay-ingress %q: want 'node<-peer'", r.replayIngress)
		}
		return parts[0], parts[1], nil
	}
	targets := topo.ResolveTargets(r.defaultScenario)
	if len(targets) == 0 {
		return "", "", fmt.Errorf("-replay: topology has no explore targets to default the ingress from; use -replay-ingress")
	}
	return targets[0].Node, targets[0].Peer, nil
}

// readReplay loads the -replay trace file (nil when the flag is unset).
func (r fedRun) readReplay() []trace.Record {
	if r.replayFile == "" {
		return nil
	}
	f, err := os.Open(r.replayFile)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	records, err := trace.Read(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		log.Fatal(err)
	}
	return records
}

// checkGolden diffs the last round's canonical finding snapshot against
// -golden (or rewrites it under -update-golden). A mismatch is fatal:
// the harness exits non-zero naming the first divergent finding.
func (r fedRun) checkGolden(snapshot []string) {
	if r.goldenFile == "" {
		return
	}
	if err := regress.Check(r.goldenFile, snapshot, r.updateGolden); err != nil {
		log.Fatal(err)
	}
	if r.updateGolden {
		fmt.Printf("\nwrote %s (%d lines)\n", r.goldenFile, len(snapshot))
	} else {
		fmt.Printf("\nfinding snapshot matches %s\n", r.goldenFile)
	}
}

// printMinimization renders a target's witness-minimization outcome —
// one copy shared by the in-process and distributed modes.
func printMinimization(findings []core.Finding, st *minimize.Stats) {
	for _, f := range findings {
		if f.MinimalWitness != nil {
			fmt.Printf("  minimal witness: %s\n", minimize.Render(f.MinimalWitness))
		}
	}
	if st != nil {
		fmt.Printf("minimization: %s\n", st)
	}
}

// runFederated is the -topology mode: instantiate the multi-AS topology,
// optionally replay a recorded trace into it, run federated rounds
// (per-node concolic exploration over a shared worker pool, cross-node
// witness propagation, cross-node oracles, optional witness
// minimization) and report both the per-node results and the cross-node
// violations; -golden then diffs the final round's finding snapshot.
func runFederated(run fedRun) {
	topo, err := run.loadTopo()
	if err != nil {
		log.Fatal(err)
	}
	reg, tracer := run.telemetrySetup()
	if reg != nil {
		// In-process rounds surface the concolic engine's own families;
		// there is no RPC layer to instrument.
		run.engOpts.Metrics = concolic.NewMetrics(reg)
	}
	fe, err := core.NewFederatedExperiment(topo, run.options())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federated topology %q: %d nodes, %d edges\n", topo.Name, len(topo.Nodes), len(topo.Edges))
	for _, name := range fe.Fabric.NodeNames() {
		r := fe.Fabric.Routers[name]
		fmt.Printf("  %-12s AS%-6d %d prefixes after convergence\n",
			name, r.Config().LocalAS, r.RIB().Prefixes())
	}

	if records := run.readReplay(); records != nil {
		node, peer, err := run.ingress(topo)
		if err != nil {
			log.Fatal(err)
		}
		n, err := fe.Replay(node, peer, records)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed %d trace record(s) into %s←%s (%s: %d prefixes after replay)\n",
			n, node, peer, node, fe.Fabric.Routers[node].RIB().Prefixes())
	}

	confirmed := 0
	var last *core.FederatedResult
	for round := 1; round <= run.rounds; round++ {
		if run.rounds > 1 {
			fmt.Printf("\n======== federated round %d/%d ========\n", round, run.rounds)
		}
		roundStart := time.Now()
		res, err := fe.Round()
		if err != nil {
			log.Fatal(err)
		}
		// In-process rounds get one coarse span each; the distributed
		// mode traces per-RPC inside the coordinator instead.
		tracer.Add("federated", fmt.Sprintf("round %d", round), roundStart, time.Since(roundStart))
		last = res
		for _, tr := range res.Targets {
			label := fmt.Sprintf("%s←%s", tr.Node, tr.Peer)
			if tr.Err != nil {
				fmt.Printf("\n[%s] skipped: %v\n", label, tr.Err)
				continue
			}
			printResult(label+" "+tr.Scenario, tr.Result, run.verbose)
			printMinimization(tr.Result.Findings, tr.Result.Minimization)
		}
		confirmed += printCrossNodeSummary("cross-node propagation",
			fmt.Sprintf("%d witness(es) injected into the shadow fabric, %d deliveries propagated",
				res.WitnessesInjected, res.PropagationSteps),
			res.WitnessesSkipped, res.Violations)
	}
	if run.rounds > 1 {
		fmt.Printf("\n%d violation(s) confirmed across %d rounds\n", confirmed, run.rounds)
	}
	run.writeTrace(tracer)
	run.checkGolden(last.Snapshot())
}

// runDistributed is the -distributed mode: the same federated rounds as
// runFederated, but each node lives in its own dicenode agent process
// and every per-node operation — including trace replay and the
// candidate re-injections behind -minimize — crosses the dist wire
// protocol.
func runDistributed(run fedRun, addrs string) {
	topo, err := run.loadTopo()
	if err != nil {
		log.Fatal(err)
	}
	var dialers []dist.Dialer
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		dialers = append(dialers, dist.TCPDialer{Addr: addr, Timeout: run.dialTimeout})
	}
	copts := []dist.ConnOption{dist.WithRetryPolicy(dist.RetryPolicy{RPCTimeout: run.rpcTimeout})}
	reg, tracer := run.telemetrySetup()
	if reg != nil {
		copts = append(copts, dist.WithTelemetry(dist.NewMetrics(reg)))
	}
	if tracer != nil {
		copts = append(copts, dist.WithTracer(tracer))
	}
	if run.wire == "v1" {
		copts = append(copts, dist.WithMaxVersion(dist.ProtoV1), dist.WithCallAndWait())
	}
	var pool *dist.ReplicaPool
	if run.replicas > 0 || run.replicaAddrs != "" {
		var rdialers []dist.Dialer
		for i := 0; i < run.replicas; i++ {
			rdialers = append(rdialers, dist.ReplicaLoopback{Replica: dist.NewReplica()})
		}
		for _, addr := range strings.Split(run.replicaAddrs, ",") {
			addr = strings.TrimSpace(addr)
			if addr == "" {
				continue
			}
			rdialers = append(rdialers, dist.TCPDialer{Addr: addr, Timeout: run.dialTimeout})
		}
		pool = &dist.ReplicaPool{Dialers: rdialers}
		copts = append(copts, dist.WithReplicas(pool))
	}
	coord, err := dist.Connect(topo, run.options(), dialers, copts...)
	if err != nil {
		log.Fatal(err)
	}
	defer coord.Close()

	fmt.Printf("distributed topology %q: %d nodes across %d agents, %d edges\n",
		topo.Name, len(topo.Nodes), len(dialers), len(topo.Edges))
	versions := coord.Versions()
	byVer := map[int]int{}
	for _, v := range versions {
		byVer[v]++
	}
	for v := 1; v <= dist.ProtoLatest; v++ {
		if n := byVer[v]; n > 0 {
			fmt.Printf("wire protocol v%d negotiated with %d agent(s)\n", v, n)
		}
	}

	if run.replayFile != "" {
		node, peer, err := run.ingress(topo)
		if err != nil {
			log.Fatal(err)
		}
		raw, err := os.ReadFile(run.replayFile)
		if err != nil {
			log.Fatal(err)
		}
		n, err := coord.Replay(node, peer, raw)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replayed %d trace record(s) into %s←%s on every agent\n", n, node, peer)
	}

	confirmed := 0
	var last *dist.RoundResult
	for round := 1; round <= run.rounds; round++ {
		if run.rounds > 1 {
			fmt.Printf("\n======== distributed round %d/%d ========\n", round, run.rounds)
		}
		res, err := coord.Round()
		if err != nil {
			log.Fatal(err)
		}
		last = res
		for _, tr := range res.Targets {
			label := fmt.Sprintf("%s←%s", tr.Node, tr.Peer)
			if tr.Skipped != "" {
				fmt.Printf("\n[%s] skipped: %s\n", label, tr.Skipped)
				continue
			}
			ex := tr.Explore
			printExploreStats(label+" "+tr.Scenario, ex.Runs, ex.NewPaths, ex.BranchesSeen,
				time.Duration(ex.ElapsedNS), ex.SolverCalls, ex.CacheHits, ex.SolverSat,
				ex.SolverUnsat, ex.SkippedPaths, ex.SkippedNegations, ex.CapturedMessages)
			if len(ex.Findings) > 0 {
				fmt.Printf("%d finding(s):\n", len(ex.Findings))
				for _, f := range ex.Findings {
					fmt.Printf("  %s\n", f.Rendered)
					if run.verbose {
						// Per-path envs stay on the agent; the concrete
						// witness assignment is what crosses the wire.
						fmt.Printf("    witness input: %v\n", f.Input)
					}
				}
			}
			printMinimization(tr.Findings, tr.Minimization)
		}
		confirmed += printCrossNodeSummary("cross-domain propagation",
			fmt.Sprintf("%d witness(es) relayed between agents, %d deliveries propagated",
				res.WitnessesInjected, res.PropagationSteps),
			res.WitnessesSkipped, res.Violations)
	}
	if run.rounds > 1 {
		fmt.Printf("\n%d violation(s) confirmed across %d rounds\n", confirmed, run.rounds)
	}
	if pool != nil {
		st := pool.Stats()
		fmt.Printf("\nreplica pool: %d worker(s) started (%d by autoscale), %d shard(s) explored, %d stolen, %d reconnect(s)\n",
			st.Started, st.Scaled, st.Completed, st.Requeues, st.Reconnects)
	}
	printFleetHealth(last.Health)
	run.writeTrace(tracer)
	run.checkGolden(last.Snapshot())
}

// printFleetHealth reports nodes that limped through the run: reconnects
// survived, and any node degraded to its in-process fallback. Healthy
// silence is the common case — a clean fleet prints nothing.
func printFleetHealth(health map[string]dist.NodeHealth) {
	var names []string
	for n, h := range health {
		if h.State != dist.HealthHealthy || h.Faults > 0 {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return
	}
	sort.Strings(names)
	fmt.Println("\nfleet health:")
	for _, n := range names {
		h := health[n]
		fmt.Printf("  %-12s %s (%d fault(s), %d reconnect(s))", n, h.State, h.Faults, h.Reconnects)
		if h.LastFault != "" {
			fmt.Printf(" — last: %s", h.LastFault)
		}
		fmt.Println()
	}
}

// printCrossNodeSummary renders a round's witness-propagation summary
// and its violations — shared by the in-process and distributed modes
// (the CI walkthrough smokes grep this output, so there is exactly one
// copy of it). It returns the number of violations printed.
func printCrossNodeSummary(header, witnessLine string, skipped int, violations []core.FederatedViolation) int {
	fmt.Printf("\n== %s ==\n", header)
	fmt.Println(witnessLine)
	if skipped > 0 {
		fmt.Printf("%d witness(es) dropped by the per-round cap\n", skipped)
	}
	if len(violations) == 0 {
		fmt.Println("no cross-node oracle violations")
		return 0
	}
	fmt.Printf("%d CONFIRMED cross-node oracle violation(s):\n", len(violations))
	for _, v := range violations {
		fmt.Printf("  %s\n", v)
	}
	return len(violations)
}

// resolveScenarios expands the -scenario flag (plus the legacy -open
// shorthand) against the registry.
func resolveScenarios(flagVal string, openFSM bool) ([]string, error) {
	var names []string
	if flagVal == "all" {
		names = core.ScenarioNames()
	} else {
		for _, n := range strings.Split(flagVal, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if _, ok := core.LookupScenario(n); !ok {
				return nil, fmt.Errorf("unknown scenario %q (registered: %v)", n, core.ScenarioNames())
			}
			names = append(names, n)
		}
	}
	if openFSM {
		have := false
		for _, n := range names {
			if n == core.ScenarioOpen {
				have = true
			}
		}
		if !have {
			names = append(names, core.ScenarioOpen)
		}
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("no scenarios selected")
	}
	return names, nil
}

// printExploreStats renders the per-target exploration stat lines —
// one copy shared by the local/federated printResult and the
// distributed mode (whose stats arrive as wire fields, not a Report).
func printExploreStats(label string, runs, newPaths, branches int, elapsed time.Duration,
	solverCalls, cacheHits, sat, unsat, skippedPaths, skippedNegations, captured int) {
	fmt.Printf("\n[%s] exploration: %d runs, %d new paths, %d branches seen, %v\n",
		label, runs, newPaths, branches, elapsed.Round(time.Millisecond))
	fmt.Printf("[%s] solver: %d queries solved, %d cache hits (%d sat, %d unsat)\n",
		label, solverCalls, cacheHits, sat, unsat)
	if skippedPaths+skippedNegations > 0 {
		fmt.Printf("[%s] warm state: %d known paths and %d known negations skipped\n",
			label, skippedPaths, skippedNegations)
	}
	fmt.Printf("[%s] isolation: %d messages produced by clones, all intercepted\n",
		label, captured)
}

// printResult renders one round's outcome: the shared exploration stats,
// then the scenario-specific report.
func printResult(name string, res *core.Result, verbose bool) {
	rep := res.Report
	printExploreStats(name, rep.Runs, len(rep.Paths), rep.BranchesSeen, rep.Elapsed,
		rep.SolverCalls, rep.CacheHits, rep.SolverSat, rep.SolverUnsat,
		rep.SkippedPaths, rep.SkippedNegations, res.CapturedMessages)

	if verbose {
		for _, p := range rep.Paths {
			fmt.Printf("  path %d: env=%v\n", p.Seq, p.Env)
		}
	}

	if s, ok := res.Details.(fmt.Stringer); ok {
		fmt.Print(s.String())
	}

	switch {
	case len(res.Findings) == 0 && name == core.ScenarioUpdate && rep.SkippedPaths > 0:
		// Warm round: oracles only see paths new to this round, so "no
		// findings" here must not read as "the earlier findings are gone".
		fmt.Println("no NEW potential hijacks found this round (known paths skipped; see earlier rounds)")
	case len(res.Findings) == 0 && name == core.ScenarioUpdate:
		fmt.Println("no potential hijacks found")
	case len(res.Findings) > 0:
		fmt.Printf("%d finding(s):\n", len(res.Findings))
		for _, fd := range res.Findings {
			fmt.Printf("  %s\n", fd)
		}
	}
	if res.FalsePositivesFiltered > 0 {
		fmt.Printf("%d anycast false positive(s) suppressed\n", res.FalsePositivesFiltered)
	}
}
