// Command doccheck verifies the repository's markdown documentation:
// every intra-repo link — [text](relative/path) — must resolve to an
// existing file or directory. External links (http/https/mailto) and
// same-document anchors are ignored. CI's docs job runs it so renames
// and deletions cannot silently break ARCHITECTURE.md, DESIGN.md, the
// example walkthroughs or the ROADMAP.
//
//	go run ./cmd/doccheck            # check the repo rooted at .
//	go run ./cmd/doccheck -root dir
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRe matches inline markdown links: [text](target). Images share the
// syntax (![alt](target)) and are covered by the same match.
var linkRe = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	root := flag.String("root", ".", "repository root to scan")
	flag.Parse()

	broken := 0
	err := filepath.WalkDir(*root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		broken += checkFile(path)
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "doccheck:", err)
		os.Exit(1)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d broken intra-repo link(s)\n", broken)
		os.Exit(1)
	}
	fmt.Println("doccheck: all intra-repo markdown links resolve")
}

// checkFile reports the number of broken intra-repo links in one file.
func checkFile(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", path, err)
		return 1
	}
	broken := 0
	for i, line := range strings.Split(string(data), "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skipTarget(target) {
				continue
			}
			// Drop a trailing #anchor; the file part must still exist.
			if idx := strings.IndexByte(target, '#'); idx >= 0 {
				target = target[:idx]
				if target == "" {
					continue // same-document anchor
				}
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Fprintf(os.Stderr, "%s:%d: broken link %q (%s does not exist)\n",
					path, i+1, m[1], resolved)
				broken++
			}
		}
	}
	return broken
}

// skipTarget reports whether the link target is out of doccheck's scope.
func skipTarget(t string) bool {
	return strings.Contains(t, "://") ||
		strings.HasPrefix(t, "mailto:") ||
		strings.HasPrefix(t, "#")
}
