// Command tracegen generates a synthetic RouteViews-style BGP trace in
// the MRT-lite format used by the experiment harness: a full table dump
// followed by an incremental update stream (the workload shape of the
// paper's route-views.eqix trace).
//
// Usage:
//
//	tracegen -out trace.mrtl -table 319355 -updates 15000 -minutes 15
//
// Small deterministic traces double as replay-harness fixtures (see
// examples/replay/README.md): the committed examples/replay/trace.mrtl
// was generated with
//
//	tracegen -out examples/replay/trace.mrtl -table 64 -updates 16 -minutes 1 -seed 7 -peer-as 64900
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dice/internal/netaddr"
	"dice/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		out      = flag.String("out", "trace.mrtl", "output file")
		table    = flag.Int("table", 319355, "full-dump prefixes (paper: 319,355)")
		updates  = flag.Int("updates", 250, "incremental updates (paper rate: ~0.28/s over 15 min)")
		minutes  = flag.Int("minutes", 15, "update trace duration in minutes")
		seed     = flag.Int64("seed", 1, "generator seed")
		withdraw = flag.Float64("withdraw", 0.1, "withdraw fraction of updates")
		peerAS   = flag.Uint("peer-as", 0, "first AS on every path (0 = generator default; match the replay ingress peer's AS)")
		nextHop  = flag.String("nexthop", "", "next-hop on announcements (default: generator default)")
	)
	flag.Parse()

	cfg := trace.DefaultGenConfig()
	cfg.TableSize = *table
	cfg.UpdateCount = *updates
	cfg.Duration = time.Duration(*minutes) * time.Minute
	cfg.Seed = *seed
	cfg.WithdrawFraction = *withdraw
	if *peerAS != 0 {
		if *peerAS > 65535 {
			log.Fatalf("-peer-as %d: 2-byte ASNs only (max 65535)", *peerAS)
		}
		cfg.PeerAS = uint16(*peerAS)
	}
	if *nextHop != "" {
		a, err := netaddr.ParseAddr(*nextHop)
		if err != nil {
			log.Fatal(err)
		}
		cfg.NextHop = a
	}

	start := time.Now()
	records := trace.Generate(cfg)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := trace.Write(w, records); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s: %d records (%d dump + %d updates), %d bytes, in %v\n",
		*out, len(records), *table, *updates, st.Size(), time.Since(start).Round(time.Millisecond))
}
