// Command tracegen generates a synthetic RouteViews-style BGP trace in
// the MRT-lite format used by the experiment harness: a full table dump
// followed by an incremental update stream (the workload shape of the
// paper's route-views.eqix trace).
//
// Usage:
//
//	tracegen -out trace.mrtl -table 319355 -updates 15000 -minutes 15
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"dice/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tracegen: ")

	var (
		out      = flag.String("out", "trace.mrtl", "output file")
		table    = flag.Int("table", 319355, "full-dump prefixes (paper: 319,355)")
		updates  = flag.Int("updates", 250, "incremental updates (paper rate: ~0.28/s over 15 min)")
		minutes  = flag.Int("minutes", 15, "update trace duration in minutes")
		seed     = flag.Int64("seed", 1, "generator seed")
		withdraw = flag.Float64("withdraw", 0.1, "withdraw fraction of updates")
	)
	flag.Parse()

	cfg := trace.DefaultGenConfig()
	cfg.TableSize = *table
	cfg.UpdateCount = *updates
	cfg.Duration = time.Duration(*minutes) * time.Minute
	cfg.Seed = *seed
	cfg.WithdrawFraction = *withdraw

	start := time.Now()
	records := trace.Generate(cfg)

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := trace.Write(w, records); err != nil {
		log.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}

	st, _ := os.Stat(*out)
	fmt.Printf("wrote %s: %d records (%d dump + %d updates), %d bytes, in %v\n",
		*out, len(records), *table, *updates, st.Size(), time.Since(start).Round(time.Millisecond))
}
