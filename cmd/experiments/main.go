// Command experiments regenerates every number in the paper's evaluation
// (§4.1 memory and CPU, §4.2 route-leak detection) plus the two ablations
// from DESIGN.md, and prints paper-vs-measured tables.
//
// Usage:
//
//	experiments                  # run everything at default scale
//	experiments -exp memory      # just E1
//	experiments -table 319355    # paper-scale table (slow)
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"dice/internal/concolic"
	"dice/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	var (
		exp     = flag.String("exp", "all", "experiment: all|memory|cpu-full|cpu-steady|routeleak|warmstate|federated|ablation-symbolic|ablation-checkpoint|topology")
		table   = flag.Int("table", 20000, "routing table size (paper: 319,355)")
		updates = flag.Int("updates", 250, "incremental updates in the trace (paper rate: ~0.28/s x 15 min)")
		runs    = flag.Int("runs", 2000, "concolic run budget per round")
		window  = flag.Duration("window", 2*time.Second, "wall-clock window for the steady-state replay")
		seed    = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	s := core.Scale{TableSize: *table, UpdateCount: *updates, ExploreRuns: *runs, Seed: *seed}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n================ %s ================\n", name)
		start := time.Now()
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Printf("[%s done in %v]\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("topology", func() error { return topology() })
	run("memory", func() error { return memory(s) })
	run("cpu-full", func() error { return cpuFull(s) })
	run("cpu-steady", func() error { return cpuSteady(s, *window) })
	run("routeleak", func() error { return routeleak(s) })
	run("warmstate", func() error { return warmState(s) })
	run("federated", func() error { return federated(s) })
	run("ablation-symbolic", func() error { return ablationSymbolic(s) })
	run("ablation-checkpoint", func() error { return ablationCheckpoint(s) })
}

// topology instantiates and prints Figure 2 (used by every experiment).
func topology() error {
	f, err := core.NewFig2(core.Fig2Options{})
	if err != nil {
		return err
	}
	fmt.Println("F2 — the experimental topology (paper Figure 2):")
	fmt.Println()
	fmt.Println("    [customer AS65001] --customer-provider link-- [provider AS65002, DiCE] -- [rest-of-internet AS65003]")
	fmt.Println()
	for _, r := range []struct {
		name string
		rib  int
	}{
		{core.NodeCustomer, f.Customer.RIB().Prefixes()},
		{core.NodeProvider, f.Provider.RIB().Prefixes()},
		{core.NodeInternet, f.Internet.RIB().Prefixes()},
	} {
		fmt.Printf("  %-10s converged, %d prefixes\n", r.name, r.rib)
	}
	return nil
}

func memory(s core.Scale) error {
	fmt.Printf("E1 — §4.1 memory overhead (table %d, %d updates of divergence)\n\n", s.TableSize, s.UpdateCount)
	res, err := core.RunE1Memory(s)
	if err != nil {
		return err
	}
	fmt.Printf("  %-44s %12s %12s\n", "metric", "paper", "measured")
	fmt.Printf("  %-44s %12s %12s\n", "checkpoint unique pages (vs live, after replay)", "3.45%",
		fmt.Sprintf("%.2f%%", 100*res.UniqueFraction))
	fmt.Printf("  %-44s %12s %12s\n", "exploration clone extra pages (mean)", "36.93%",
		fmt.Sprintf("%.2f%%", 100*res.CloneOverheadMean))
	fmt.Printf("  %-44s %12s %12s\n", "exploration clone extra pages (max)", "39%",
		fmt.Sprintf("%.2f%%", 100*res.CloneOverheadMax))
	fmt.Printf("\n  checkpoint: %d pages (%d KiB); %d clones measured\n",
		res.CheckpointPages, res.CheckpointBytes/1024, res.ClonesMeasured)
	fmt.Println("  shape check: checkpoint shares the vast majority of pages; clones cost a")
	fmt.Println("  small fraction of a full copy (our clones are tighter than the paper's")
	fmt.Println("  because only touched RIB buckets diverge — no instrumentation runtime heap).")
	return nil
}

func cpuFull(s core.Scale) error {
	fmt.Printf("E2 — §4.1 CPU impact under full load (table %d)\n\n", s.TableSize)
	res, err := core.RunE2FullLoad(s)
	if err != nil {
		return err
	}
	fmt.Printf("  %-40s %12s %12s\n", "metric", "paper", "measured")
	fmt.Printf("  %-40s %12s %12.1f\n", "updates/s with exploration", "13.9", res.UpdatesPerSecWith)
	fmt.Printf("  %-40s %12s %12.1f\n", "updates/s without exploration", "15.1", res.UpdatesPerSecWithout)
	fmt.Printf("  %-40s %12s %11.1f%%\n", "throughput impact", "8%", res.ImpactPercent)
	fmt.Printf("\n  %d updates processed; %d exploration rounds ran alongside\n",
		res.UpdatesProcessed, res.ExplorationRounds)
	fmt.Println("  shape check: impact is small (the paper's 8%); absolute rates differ —")
	fmt.Println("  our substrate is an in-memory simulator, not BIRD on a 48-core testbed.")
	return nil
}

func cpuSteady(s core.Scale, window time.Duration) error {
	fmt.Printf("E3 — §4.1 CPU impact at steady state (%d updates paced over %v)\n\n", s.UpdateCount, window)
	res, err := core.RunE3Steady(s, window)
	if err != nil {
		return err
	}
	fmt.Printf("  %-40s %12s %12s\n", "metric", "paper", "measured")
	fmt.Printf("  %-40s %12s %12.3f\n", "updates/s with exploration", "0.272", res.UpdatesPerSecWith)
	fmt.Printf("  %-40s %12s %12.3f\n", "updates/s without exploration", "0.287", res.UpdatesPerSecWithout)
	fmt.Printf("  %-40s %12s %11.1f%%\n", "throughput impact", "~5% (negligible)", res.ImpactPercent)
	fmt.Println("\n  shape check: when the trace rate (not the CPU) is the bottleneck, running")
	fmt.Println("  exploration alongside makes a negligible difference.")
	return nil
}

func routeleak(s core.Scale) error {
	fmt.Printf("E4 — §4.2 detecting route leaks (table %d + 3 installed victims)\n\n", s.TableSize)

	fmt.Println("  -- broken customer filter (the misconfiguration) --")
	res, err := core.RunE4RouteLeak(s, core.BrokenCustomerFilter, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  exploration: %d runs, %d paths, %v\n", res.Runs, res.Paths, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("  potential hijacks found: %d (victims installed: %d)\n", len(res.Findings), res.VictimsInstalled)
	for _, fd := range res.Findings {
		fmt.Printf("    %s\n", fd)
	}
	if res.YouTubeDetected {
		fmt.Println("  ✓ the YouTube-analogue /22 (origin AS36561) is detected as hijackable")
	} else {
		fmt.Println("  ✗ YouTube-analogue victim NOT detected")
	}

	fmt.Println("\n  -- correct customer filter (control) --")
	clean, err := core.RunE4RouteLeak(s, core.CorrectCustomerFilter, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  potential hijacks found: %d (expected 0)\n", len(clean.Findings))

	fmt.Println("\n  paper: \"DiCE clearly states which prefix ranges can be leaked\"; each")
	fmt.Println("  finding above carries the leakable range and a concrete witness input.")
	return nil
}

func warmState(s core.Scale) error {
	fmt.Println("S1 — cross-round exploration state (the paper's continuous online mode)")
	fmt.Println()
	res, err := core.RunS1WarmState(s, 3)
	if err != nil {
		return err
	}
	fmt.Printf("  %-10s %8s %10s %10s %12s %10s\n",
		"scenario", "round", "runs", "new-paths", "queries", "skipped")
	for _, r := range res.Rounds {
		fmt.Printf("  %-10s %8d %10d %10d %12d %10d\n",
			r.Scenario, r.Round, r.Runs, r.NewPaths, r.SolverQueries, r.SkippedNegations)
	}
	fmt.Println("\n  shape check: round 1 pays the full exploration; warm rounds on the same")
	fmt.Println("  seed skip every known path and negation, so continuous online rounds cost")
	fmt.Println("  one handler run instead of a full re-exploration.")
	return nil
}

func ablationSymbolic(s core.Scale) error {
	fmt.Printf("A1 — §3.2 ablation: field-granular vs raw-byte symbolic marking\n\n")
	res, err := core.RunA1SymbolicMarking(s)
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %14s %14s\n", "metric", "field-granular", "raw-bytes")
	fmt.Printf("  %-34s %14d %14d\n", "handler runs", res.FieldRuns, res.RawRuns)
	fmt.Printf("  %-34s %13.1f%% %13.1f%%\n", "valid generated messages", 100*res.FieldValidRatio, 100*res.RawValidRatio)
	fmt.Printf("  %-34s %14d %14d\n", "distinct policy-code outcomes", res.FieldPolicyPaths, res.RawPolicyPaths)
	fmt.Println("\n  shape check: raw marking wastes its budget on invalid messages that only")
	fmt.Println("  exercise parsing code (§3.2); field marking keeps every message valid and")
	fmt.Println("  goes deep into policy code.")
	return nil
}

func ablationCheckpoint(s core.Scale) error {
	fmt.Printf("A2 — §2.3 ablation: explore-from-checkpoint vs replay-from-initial-state\n\n")
	fmt.Printf("  %-14s %16s %16s %10s\n", "history (msgs)", "checkpoint", "replay", "speedup")
	for _, h := range []int{1000, 5000, 20000} {
		if h > s.TableSize*2 && s.TableSize > 0 {
			// keep runtime sane at small scales
		}
		res, err := core.RunA2CheckpointVsReplay(h, s.Seed)
		if err != nil {
			return err
		}
		fmt.Printf("  %-14d %16v %16v %9.1fx\n", res.HistoryLen,
			res.CheckpointTime.Round(time.Microsecond),
			res.ReplayTime.Round(time.Microsecond),
			res.SpeedupFactor)
	}
	fmt.Println("\n  shape check: checkpointing cost is (near) independent of history length;")
	fmt.Println("  replay cost grows with it — \"prohibitively time-consuming\" at scale (§2.3).")
	return nil
}

// federated (S4) runs cold and warm federated rounds over the built-in
// 3-node line and 5-node mesh topologies: one frontier shard per node
// over a shared worker pool, concrete witness propagation over a shadow
// fabric, and the cross-node oracles (route leak, oscillation bound,
// multi-hop blackhole).
func federated(s core.Scale) error {
	fmt.Println("S4 — federated topology exploration (3-node line vs 5-node mesh)")
	for _, topo := range []*core.Topology{core.LineTopology(3), core.MeshTopology(5)} {
		fe, err := core.NewFederatedExperiment(topo, core.FederatedOptions{
			Engine:     concolic.Options{MaxRuns: s.ExploreRuns},
			Workers:    4,
			ReuseState: true,
		})
		if err != nil {
			return err
		}
		cold, err := fe.Round()
		if err != nil {
			return err
		}
		warm, err := fe.Round()
		if err != nil {
			return err
		}
		sum := func(r *core.FederatedResult) (targets, runs, paths, skipped int) {
			for _, tr := range r.Targets {
				if tr.Err != nil {
					continue
				}
				targets++
				runs += tr.Result.Report.Runs
				paths += len(tr.Result.Report.Paths)
				skipped += tr.Result.Report.SkippedNegations
			}
			return
		}
		ct, cr, cp, _ := sum(cold)
		_, wr, wp, ws := sum(warm)
		fmt.Printf("\n  %s: %d nodes, %d edges, %d explored peerings\n",
			topo.Name, len(topo.Nodes), len(topo.Edges), ct)
		fmt.Printf("    cold round: %d runs, %d paths, %d witnesses, %d violations in %v\n",
			cr, cp, cold.WitnessesInjected, len(cold.Violations), cold.Elapsed.Round(time.Millisecond))
		fmt.Printf("    warm round: %d runs, %d new paths, %d negations skipped in %v\n",
			wr, wp, ws, warm.Elapsed.Round(time.Millisecond))
		for _, v := range cold.Violations {
			fmt.Printf("    %s\n", v)
		}
	}
	fmt.Println("\n  shape check: the mesh explores more peerings over the same worker pool;")
	fmt.Println("  warm rounds skip all known per-node work (the online mode, federated).")
	return nil
}
