// Command bench runs the S-series scheduler/solver benchmarks and writes
// machine-readable results (ns/op, bytes/op, allocs/op, custom metrics)
// so the perf trajectory is tracked across PRs.
//
// The output file keeps two sections: "baseline" — frozen the first time
// the file is written — and "current", overwritten on every run.
// Comparing current against baseline is how per-PR perf acceptance
// criteria are checked. Each PR that changes the tracked set writes a
// fresh file (BENCH_PR2.json froze the pre-hash-consing engine;
// BENCH_PR3.json added the federated round benchmarks; BENCH_PR6.json
// adds the distributed wire-transport benchmarks, whose v1-json mode is
// the frozen baseline the v2 protocol is measured against;
// BENCH_PR8.json tracks replica-pool round scaling on the generated
// 1k-node AS topology, whose replicas-1 leg is the baseline the larger
// pools are measured against).
//
//	go run ./cmd/bench                 # S-series + federated + wire, writes BENCH_PR6.json
//	go run ./cmd/bench -bench 'S3' -benchtime 10x
//	go run ./cmd/bench -bench BenchmarkWireRound -benchtime 5x
//	go run ./cmd/bench -bench '^BenchmarkReplicaScaling$' -pkgs ./internal/dist -benchtime 1x -out BENCH_PR8.json
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one benchmark's parsed numbers.
type BenchResult struct {
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_op"`
	BytesPerOp float64            `json:"bytes_op,omitempty"`
	AllocsOp   float64            `json:"allocs_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Run is one full benchmark invocation.
type Run struct {
	Timestamp  string                 `json:"timestamp"`
	GoVersion  string                 `json:"go_version"`
	GOOS       string                 `json:"goos"`
	GOARCH     string                 `json:"goarch"`
	Bench      string                 `json:"bench"`
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// File is the on-disk layout of BENCH_PR2.json.
type File struct {
	Baseline *Run `json:"baseline,omitempty"`
	Current  *Run `json:"current"`
}

func main() {
	benchRe := flag.String("bench", "^BenchmarkS[0-9]|^BenchmarkFrontierFold|^BenchmarkFederatedRound|^BenchmarkWireRound", "benchmark regex passed to go test -bench")
	out := flag.String("out", "BENCH_PR6.json", "output JSON path")
	pkgs := flag.String("pkgs", "./...", "packages to benchmark")
	benchtime := flag.String("benchtime", "", "go test -benchtime value (optional)")
	count := flag.Int("count", 1, "go test -count value")
	if err := run(benchRe, out, pkgs, benchtime, count); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run(benchRe, out, pkgs, benchtime *string, count *int) error {
	flag.Parse()
	args := []string{"test", "-run", "^$", "-bench", *benchRe, "-benchmem",
		"-count", strconv.Itoa(*count)}
	if *benchtime != "" {
		args = append(args, "-benchtime", *benchtime)
	}
	args = append(args, *pkgs)

	fmt.Fprintln(os.Stderr, "running: go", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("go test: %w", err)
	}

	results := parse(&buf)
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines matched %q", *benchRe)
	}
	cur := &Run{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *benchRe,
		Benchmarks: results,
	}

	var file File
	if raw, err := os.ReadFile(*out); err == nil {
		// A corrupt file must not silently re-freeze the baseline at the
		// current run's numbers — that would make every later comparison
		// against "pre-change" vacuous. Make the operator decide.
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("%s exists but is not valid JSON (%v); refusing to overwrite — delete it to start fresh", *out, err)
		}
	} else if !os.IsNotExist(err) {
		return fmt.Errorf("read %s: %w", *out, err)
	}
	if file.Baseline == nil {
		file.Baseline = cur // first write freezes the baseline
	}
	file.Current = cur

	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	for name, r := range results {
		fmt.Printf("%-50s %12.0f ns/op %10.0f allocs/op\n", name, r.NsPerOp, r.AllocsOp)
	}
	fmt.Fprintln(os.Stderr, "wrote", *out)
	return nil
}

// parse extracts benchmark result lines from go test output. A line is
//
//	BenchmarkName[-P]  iters  v1 unit1  v2 unit2 ...
//
// with ns/op, B/op, allocs/op mapped to fixed fields and everything else
// (b.ReportMetric) collected under Metrics.
func parse(buf *bytes.Buffer) map[string]BenchResult {
	results := make(map[string]BenchResult)
	sc := bufio.NewScanner(buf)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Keep the name verbatim (including any -GOMAXPROCS suffix):
		// sub-benchmark names like workers-1 legitimately end in numbers,
		// and results are only compared against runs from the same setup.
		name := fields[0]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := BenchResult{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsOp = v
			default:
				if r.Metrics == nil {
					r.Metrics = make(map[string]float64)
				}
				r.Metrics[fields[i+1]] = v
			}
		}
		results[name] = r
	}
	return results
}
