// Command bgpd runs a set of BGP daemons on the in-memory virtual
// network, converges them, and prints their routing tables — the
// equivalent of bringing up the paper's BIRD testbed.
//
// Each -config file defines one router; the file's base name (without
// extension) is its node name, which peer blocks in other configs refer
// to. Links are given as -link a:b pairs.
//
// Usage:
//
//	bgpd -config provider.conf -config customer.conf -link provider:customer
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dice/internal/config"
	"dice/internal/netsim"
	"dice/internal/router"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bgpd: ")

	var configs, links stringList
	flag.Var(&configs, "config", "router config file (repeatable)")
	flag.Var(&links, "link", "link between two routers, as name:name (repeatable)")
	latency := flag.Duration("latency", time.Millisecond, "link latency")
	dump := flag.Bool("dump", true, "print converged routing tables")
	flag.Parse()

	if len(configs) == 0 {
		log.Fatal("at least one -config is required")
	}

	net := netsim.New(time.Now())
	routers := map[string]*router.Router{}
	var order []string

	for _, path := range configs {
		src, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		cfg, err := config.Parse(string(src))
		if err != nil {
			log.Fatalf("%s: %v", path, err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		r := router.New(name, cfg, net)
		if err := net.AddNode(name, r); err != nil {
			log.Fatal(err)
		}
		routers[name] = r
		order = append(order, name)
	}

	for _, l := range links {
		parts := strings.SplitN(l, ":", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -link %q, want a:b", l)
		}
		if err := net.Connect(parts[0], parts[1], *latency); err != nil {
			log.Fatal(err)
		}
	}

	for _, name := range order {
		if err := routers[name].Start(net.Now()); err != nil {
			log.Fatal(err)
		}
	}
	delivered := net.Run(0)
	fmt.Printf("converged: %d routers, %d messages delivered\n", len(routers), delivered)

	for _, name := range order {
		r := routers[name]
		fmt.Printf("\n=== %s (AS%d, router-id %s): %d prefixes, %d routes ===\n",
			name, r.Config().LocalAS, r.Config().RouterID, r.RIB().Prefixes(), r.RIB().Routes())
		for peer := range peersOf(r) {
			sess := r.Session(peer)
			fmt.Printf("  peer %-12s state %-12v in %d out %d\n",
				peer, sess.State(), sess.UpdatesIn, sess.UpdatesOut)
		}
		if *dump {
			for _, rt := range r.RIB().Dump() {
				fmt.Printf("  %s\n", rt)
			}
		}
	}
}

// peersOf lists a router's configured peer names.
func peersOf(r *router.Router) map[string]struct{} {
	out := map[string]struct{}{}
	for _, p := range r.Config().Peers {
		out[p.Name] = struct{}{}
	}
	return out
}
